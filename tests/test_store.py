"""The result store: sqlite rows, shards, merge conflicts, backfill."""

import dataclasses
import json
import os
import sqlite3

import pytest

from repro.exp import ResultCache, Sweep, run_points, run_sweep, shard_points
from repro.store import (
    MissingStoreResultError,
    ResultStore,
    RunMeta,
    StoreCache,
    StoreConflictError,
    StoreError,
    backfill_from_cache,
    load_shard,
    merge_shards,
    write_shard,
)

SCALE = 0.04
META = RunMeta(host="testhost", repro_version="1.0.0-test",
               recorded_at=1700000000.0)


def small_sweep(**overrides):
    kwargs = dict(name="t", workloads=["hmmer", "gamess"],
                  defenses=["Unsafe", "GhostMinion"], scale=SCALE)
    kwargs.update(overrides)
    return Sweep(**kwargs)


@pytest.fixture()
def store(tmp_path):
    with ResultStore(str(tmp_path / "r.sqlite"), run_meta=META) as db:
        yield db


# ---------------------------------------------------------------------------
# ResultStore basics
# ---------------------------------------------------------------------------

def test_insert_lookup_select_roundtrip(store):
    report = run_sweep(small_sweep())
    assert store.insert_many(report.results, sweep="t",
                             source="test") == 4
    assert len(store) == 4
    for point in report.results:
        assert store.has(point.digest)
        hit = store.lookup(point.digest)
        assert hit.cached is True
        assert hit.to_json_dict() == point.to_json_dict()
    # filtered queries come back as ResultSets under stored keys
    unsafe = store.select(defense="Unsafe")
    assert unsafe.keys() == ["hmmer::Unsafe::base",
                             "gamess::Unsafe::base"]
    assert len(store.select(workload="hmmer")) == 2
    assert len(store.select(sweep="t")) == 4
    assert len(store.select(sweep="other")) == 0
    # select preserves the exact canonical payloads
    assert store.select(sweep="t").to_json() == report.results.to_json()


def test_rows_carry_run_metadata(store):
    report = run_sweep(small_sweep())
    store.insert_many(report.results, sweep="t", source="test")
    rows = store.rows(defense="GhostMinion")
    assert len(rows) == 2
    for row in rows:
        assert row["host"] == "testhost"
        assert row["repro_version"] == "1.0.0-test"
        assert row["recorded_at"] == 1700000000.0
        assert row["sweep"] == "t" and row["source"] == "test"
        assert row["cycles"] > 0


def test_duplicate_insert_is_noop(store):
    report = run_sweep(small_sweep())
    store.insert_many(report.results)
    assert store.insert_many(report.results) == 0
    assert len(store) == 4


def test_conflicting_payload_is_hard_error(store):
    report = run_sweep(small_sweep())
    store.insert_many(report.results, source="first")
    tampered = next(iter(report.results))
    tampered = dataclasses.replace(tampered, cycles=tampered.cycles + 1)
    with pytest.raises(StoreConflictError) as exc:
        store.insert(tampered, source="second")
    assert tampered.digest in str(exc.value)
    assert "first" in str(exc.value)


def test_display_view_mismatch_is_not_a_conflict(store):
    """key/variant label are a sweep's view of a point, not part of the
    simulation identity: two views of the same digest must merge."""
    report = run_sweep(small_sweep())
    point = next(iter(report.results))
    store.insert(point)
    relabelled = dataclasses.replace(point, key="other::view::late",
                                     variant="late")
    assert store.insert(relabelled) is False  # duplicate, first wins
    assert store.lookup(point.digest).key == point.key


def test_schema_version_mismatch_rejected(tmp_path):
    path = str(tmp_path / "r.sqlite")
    ResultStore(path).close()
    conn = sqlite3.connect(path)
    conn.execute("UPDATE store_meta SET value='999' "
                 "WHERE key='schema_version'")
    conn.commit()
    conn.close()
    with pytest.raises(StoreError, match="schema version 999"):
        ResultStore(path)


def test_non_store_file_rejected(tmp_path):
    path = tmp_path / "not-a-db.sqlite"
    path.write_text("definitely not sqlite")
    with pytest.raises(StoreError):
        ResultStore(str(path))


def test_checkpoint_schema_version_mismatch_rejected(tmp_path):
    """Checkpoints version independently of results: an incompatible
    checkpoint layout must not take the whole result store down with a
    misleading error — it gets its own."""
    path = str(tmp_path / "r.sqlite")
    ResultStore(path).close()
    conn = sqlite3.connect(path)
    conn.execute("UPDATE store_meta SET value='999' "
                 "WHERE key='checkpoint_schema_version'")
    conn.commit()
    conn.close()
    with pytest.raises(StoreError, match="checkpoint schema"):
        ResultStore(path)


def test_pre_checkpoint_store_is_upgraded_in_place(tmp_path):
    """Opening a store created before the checkpoints table existed
    adopts it: the version key is stamped and checkpoints work."""
    path = str(tmp_path / "r.sqlite")
    ResultStore(path).close()
    conn = sqlite3.connect(path)
    conn.execute("DELETE FROM store_meta "
                 "WHERE key='checkpoint_schema_version'")
    conn.execute("DROP TABLE checkpoints")
    conn.commit()
    conn.close()
    reopened = ResultStore(path)
    assert reopened.checkpoint_stats()["checkpoints"] == 0
    assert reopened.checkpoint_save("p", 1, b"x", fmt=1, insts=1,
                                    cycles=1)
    reopened.close()


# ---------------------------------------------------------------------------
# engine integration: write-through and strict replay
# ---------------------------------------------------------------------------

def test_write_through_records_executed_points(store):
    sweep = small_sweep()
    first = run_sweep(sweep, cache=store)
    assert first.executed == 4 and first.cache_hits == 0
    assert len(store) == 4
    second = run_sweep(sweep, cache=store)
    assert second.executed == 0 and second.cache_hits == 4
    assert all(p.cached for p in second.results)
    assert first.results.to_json() == second.results.to_json()


def test_strict_replay_byte_identical(store):
    sweep = small_sweep()
    direct = run_sweep(sweep)
    store.insert_many(direct.results)
    replay = run_sweep(sweep, cache=StoreCache(store, "strict"))
    assert replay.executed == 0
    assert replay.results.to_json() == direct.results.to_json()


def test_strict_replay_fails_fast_on_missing_point(store):
    with pytest.raises(MissingStoreResultError):
        run_sweep(small_sweep(), cache=StoreCache(store, "strict"))
    assert len(store) == 0  # nothing was simulated or recorded


def test_readonly_mode_never_writes(store):
    run_sweep(small_sweep(), cache=StoreCache(store, "ro"))
    assert len(store) == 0


def test_storecache_rejects_unknown_mode(store):
    with pytest.raises(ValueError):
        StoreCache(store, "append")


# ---------------------------------------------------------------------------
# shards: export, merge, conflict detection
# ---------------------------------------------------------------------------

def _export_shards(tmp_path, sweep, count):
    paths = []
    for index in range(count):
        report = run_points(sweep.shard(index, count))
        path = str(tmp_path / ("shard%d.json" % index))
        write_shard(path, report.results, sweep=sweep.name,
                    index=index, count=count,
                    total_points=len(sweep.points()), run_meta=META)
        paths.append(path)
    return paths


def test_shard_merge_then_replay_matches_direct_run(tmp_path, store):
    sweep = small_sweep()
    paths = _export_shards(tmp_path, sweep, 2)
    report = merge_shards(store, paths)
    assert report.inserted == 4 and report.duplicates == 0
    assert report.shards == 2
    direct = run_sweep(sweep)
    replay = run_sweep(sweep, cache=StoreCache(store, "strict"))
    assert replay.results.to_json() == direct.results.to_json()


def test_shard_file_format(tmp_path):
    sweep = small_sweep()
    [path] = _export_shards(tmp_path, sweep, 1)
    shard = load_shard(path)
    assert shard.index == 0 and shard.count == 1
    assert shard.sweep == "t" and shard.total_points == 4
    assert len(shard.results) == 4
    meta = shard.run_meta[next(iter(shard.results)).digest]
    assert meta["host"] == "testhost"
    # a shard file is also a plain ResultSet document
    from repro.exp import ResultSet
    with open(path) as handle:
        payload = handle.read()
    assert len(ResultSet.from_json(payload)) == 4


def test_merge_is_idempotent(tmp_path, store):
    paths = _export_shards(tmp_path, small_sweep(), 2)
    merge_shards(store, paths)
    again = merge_shards(store, paths)
    assert again.inserted == 0 and again.duplicates == 4
    assert len(store) == 4


def test_merge_conflict_rolls_back_shard(tmp_path, store):
    sweep = small_sweep()
    [path] = _export_shards(tmp_path, sweep, 1)
    with open(path) as handle:
        payload = json.load(handle)
    payload["points"][0]["cycles"] += 1  # tampered result
    bad = str(tmp_path / "tampered.json")
    with open(bad, "w") as handle:
        json.dump(payload, handle)
    with pytest.raises(StoreConflictError):
        merge_shards(store, [path, bad])
    # the good shard committed; the tampered one left no partial rows
    assert len(store) == 4


def test_concurrent_writer_duplicate_is_noop(tmp_path, store):
    """Two connections write-through to the same store file: the loser
    of the insert race sees a duplicate, not an IntegrityError."""
    report = run_sweep(Sweep(workloads=["hmmer"], defenses=["Unsafe"],
                             scale=SCALE))
    point = next(iter(report.results))
    other = ResultStore(store.path, run_meta=META)
    assert store.insert(point) is True
    assert other.insert(point) is False
    other.close()


def test_merge_warns_on_incomplete_shard_family(tmp_path, store):
    sweep = small_sweep()
    paths = _export_shards(tmp_path, sweep, 2)
    partial = merge_shards(store, paths[:1])
    assert len(partial.warnings) == 1
    assert "1 of 2 shards" in partial.warnings[0]
    assert "missing indices: 1" in partial.warnings[0]
    complete = merge_shards(store, paths)
    assert complete.warnings == []


def test_merge_rejects_unknown_formats(tmp_path, store):
    bad = tmp_path / "bad.json"
    bad.write_text('{"format": 99, "points": []}')
    with pytest.raises(StoreError, match="unsupported result format"):
        merge_shards(store, [str(bad)])
    bad.write_text('{"format": 1, "points": [], '
                   '"shard": {"format": 42}}')
    with pytest.raises(StoreError, match="unsupported shard format"):
        merge_shards(store, [str(bad)])


def test_malformed_shard_content_is_clean_store_error(tmp_path, store):
    """Tampered shard internals surface as StoreError, not raw
    KeyError/ValueError tracebacks."""
    bad = tmp_path / "bad.json"
    bad.write_text("[1, 2, 3]")  # valid JSON, not a shard
    with pytest.raises(StoreError, match="not a shard file"):
        merge_shards(store, [str(bad)])
    bad.write_text('{"format": 1}')  # missing points
    with pytest.raises(StoreError, match="malformed shard file"):
        merge_shards(store, [str(bad)])
    bad.write_text('{"format": 1, "points": [{"key": "only"}]}')
    with pytest.raises(StoreError, match="malformed shard file"):
        merge_shards(store, [str(bad)])
    # bad run_meta values fail cleanly too (and roll back the shard)
    sweep = small_sweep()
    [good] = _export_shards(tmp_path, sweep, 1)
    with open(good) as handle:
        payload = json.load(handle)
    digest = next(iter(payload["run_meta"]))
    payload["run_meta"][digest]["recorded_at"] = "yesterday"
    bad.write_text(json.dumps(payload))
    with pytest.raises(StoreError, match="malformed run_meta"):
        merge_shards(store, [str(bad)])
    assert len(store) == 0


# ---------------------------------------------------------------------------
# backfill from the JSON cache
# ---------------------------------------------------------------------------

def test_backfill_from_json_cache(tmp_path, store):
    sweep = small_sweep()
    cache_dir = str(tmp_path / "cache")
    direct = run_sweep(sweep, cache=cache_dir)
    # one corrupt file and one stale alien file must be skipped
    cache = ResultCache(cache_dir)
    (tmp_path / "cache" / "zz").mkdir()
    alien = tmp_path / "cache" / "zz" / ("z" * 64 + ".json")
    alien.write_text('{"cache_version": -1}')
    corrupt_digest = sweep.points()[0].digest()
    with open(cache.path_for(corrupt_digest), "w") as handle:
        handle.write("not json{")
    report = backfill_from_cache(store, cache)
    assert report.scanned == 5
    assert report.inserted == 3
    assert report.skipped == 2
    rows = store.rows()
    assert all(row["source"] == "backfill" for row in rows)
    # the surviving entries replay exactly
    for point in direct.results:
        if point.digest == corrupt_digest:
            continue
        assert (store.lookup(point.digest).to_json_dict()
                == point.to_json_dict())
    # re-backfill is a no-op for already-held digests
    assert backfill_from_cache(store, cache).inserted == 0


def test_backfill_skips_misnamed_entry(tmp_path, store):
    cache_dir = str(tmp_path / "cache")
    run_sweep(Sweep(workloads=["hmmer"], defenses=["Unsafe"],
                    scale=SCALE), cache=cache_dir)
    cache = ResultCache(cache_dir)
    digest, path = next(iter(cache.entries()))
    moved = os.path.join(os.path.dirname(path), "ab" + "0" * 62 + ".json")
    os.rename(path, moved)
    os.rename(os.path.dirname(path),
              os.path.join(cache_dir, "ab"))
    report = backfill_from_cache(store, cache)
    assert report.inserted == 0 and report.skipped == 1


# ---------------------------------------------------------------------------
# cache maintenance (stats / prune / quarantine)
# ---------------------------------------------------------------------------

def test_cache_stats_and_prune(tmp_path):
    cache_dir = str(tmp_path / "cache")
    run_sweep(small_sweep(), cache=cache_dir)
    cache = ResultCache(cache_dir)
    stats = cache.stats()
    assert stats["entries"] == 4 and stats["bytes"] > 0
    # nothing is older than a day
    assert cache.prune(older_than=86400.0)["removed"] == 0
    removed = cache.prune()
    assert removed["removed"] == 4
    assert removed["bytes"] == stats["bytes"]
    assert cache.stats() == {"directory": cache.directory,
                             "entries": 0, "bytes": 0, "corrupt": 0}
    # empty two-hex shard dirs were cleaned up
    assert os.listdir(cache_dir) == []


def test_cache_prune_by_age_uses_mtime(tmp_path):
    cache_dir = str(tmp_path / "cache")
    run_sweep(Sweep(workloads=["hmmer"], defenses=["Unsafe"],
                    scale=SCALE), cache=cache_dir)
    cache = ResultCache(cache_dir)
    _digest, path = next(iter(cache.entries()))
    old = os.path.getmtime(path) - 10 * 86400
    os.utime(path, (old, old))
    assert cache.prune(older_than=7 * 86400.0)["removed"] == 1
    assert cache.stats()["entries"] == 0


def test_corrupt_entry_quarantined_with_warning(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    sweep = Sweep(workloads=["hmmer"], defenses=["Unsafe"], scale=SCALE)
    run_sweep(sweep, cache=cache_dir)
    cache = ResultCache(cache_dir)
    digest = sweep.points()[0].digest()
    path = cache.path_for(digest)
    with open(path, "w") as handle:
        handle.write("{truncated")
    assert cache.lookup(digest) is None
    err = capsys.readouterr().err
    assert "quarantined corrupt result-cache entry" in err
    assert not os.path.exists(path)
    assert os.path.exists(path + ".corrupt")
    # quarantined files are not entries, but stats/prune still see them
    stats = cache.stats()
    assert stats["entries"] == 0 and stats["corrupt"] == 1
    assert cache.prune()["removed"] == 1
    assert not os.path.exists(path + ".corrupt")
    assert cache.stats()["corrupt"] == 0
    assert os.listdir(cache.directory) == []


def test_non_dict_entry_quarantined(tmp_path, capsys):
    """Valid JSON that is not an object must quarantine, not raise."""
    cache_dir = str(tmp_path / "cache")
    sweep = Sweep(workloads=["hmmer"], defenses=["Unsafe"], scale=SCALE)
    run_sweep(sweep, cache=cache_dir)
    cache = ResultCache(cache_dir)
    digest = sweep.points()[0].digest()
    path = cache.path_for(digest)
    with open(path, "w") as handle:
        handle.write("null")
    assert cache.lookup(digest) is None
    assert "quarantined" in capsys.readouterr().err
    assert os.path.exists(path + ".corrupt")


def test_partial_entry_quarantined(tmp_path, capsys):
    """Well-formed JSON missing result fields is quarantined too."""
    cache_dir = str(tmp_path / "cache")
    sweep = Sweep(workloads=["hmmer"], defenses=["Unsafe"], scale=SCALE)
    run_sweep(sweep, cache=cache_dir)
    cache = ResultCache(cache_dir)
    digest = sweep.points()[0].digest()
    path = cache.path_for(digest)
    from repro.exp import CACHE_SCHEMA_VERSION
    with open(path, "w") as handle:
        json.dump({"cache_version": CACHE_SCHEMA_VERSION,
                   "result": {"key": "only"}}, handle)
    assert cache.lookup(digest) is None
    assert "quarantined" in capsys.readouterr().err
    assert os.path.exists(path + ".corrupt")


def test_stale_version_is_miss_not_quarantine(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    sweep = Sweep(workloads=["hmmer"], defenses=["Unsafe"], scale=SCALE)
    run_sweep(sweep, cache=cache_dir)
    cache = ResultCache(cache_dir)
    digest = sweep.points()[0].digest()
    path = cache.path_for(digest)
    with open(path) as handle:
        payload = json.load(handle)
    payload["cache_version"] = -1
    with open(path, "w") as handle:
        json.dump(payload, handle)
    assert cache.lookup(digest) is None
    assert capsys.readouterr().err == ""
    assert os.path.exists(path)  # left in place for store() to rewrite


# ---------------------------------------------------------------------------
# shard partition determinism
# ---------------------------------------------------------------------------

def test_shards_disjoint_union_and_stable():
    sweep = Sweep(name="big", workloads=["hmmer", "gamess", "mcf"],
                  defenses=["Unsafe", "GhostMinion", "MuonTrap"],
                  scale=SCALE)
    all_keys = {p.key for p in sweep.points()}
    for count in (1, 2, 3, 4, 9, 16):
        shards = [sweep.shard(i, count) for i in range(count)]
        seen = []
        for shard in shards:
            seen.extend(p.key for p in shard)
        assert len(seen) == len(set(seen)), "shards overlap"
        assert set(seen) == all_keys, "union != full sweep"
    # stable across independent expansions
    first = [[p.key for p in sweep.shard(i, 3)] for i in range(3)]
    second = [[p.key for p in small_sweep(
        name="big", workloads=["hmmer", "gamess", "mcf"],
        defenses=["Unsafe", "GhostMinion", "MuonTrap"]).shard(i, 3)]
        for i in range(3)]
    assert first == second


def test_shard_points_validates_arguments():
    points = small_sweep().points()
    with pytest.raises(ValueError):
        shard_points(points, 0, 0)
    with pytest.raises(ValueError):
        shard_points(points, 2, 2)
    with pytest.raises(ValueError):
        shard_points(points, -1, 2)
    ordered = sorted(points, key=lambda p: p.digest())
    assert ([p.key for p in shard_points(points, 0, 1)]
            == [p.key for p in ordered])
