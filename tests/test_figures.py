"""The figure-regeneration module (tiny scales: smoke + shape)."""

import pytest

from repro.analysis.figures import (
    dram_policy_ablation,
    figure6,
    figure9,
    figure10,
    figure11,
    section49_fu_order,
    section65_power,
    table1,
)

TINY = 0.04
SUBSET = ["mcf", "gamess"]


def test_table1_contains_config():
    result = table1()
    assert "GhostMinions" in result.text
    assert result.data["rows"]


def test_figure6_subset():
    result = figure6(scale=TINY, workloads=SUBSET)
    assert set(result.data["normalised"]) == set(SUBSET)
    geo = result.data["geomean"]
    assert set(geo) == {"GhostMinion", "MuonTrap", "MuonTrap-Flush",
                        "InvisiSpec-Spectre", "InvisiSpec-Future",
                        "STT-Spectre", "STT-Future"}
    assert all(value > 0.5 for value in geo.values())
    assert "geomean" in result.text


def test_figure9_subset():
    result = figure9(scale=TINY, workloads=SUBSET)
    table = result.data["normalised"]
    assert "GhostMinion[All]" in table["mcf"]
    assert "DMinion-Timeless" in result.text


def test_figure10_subset():
    result = figure10(scale=TINY, workloads=SUBSET)
    for proportions in result.data.values():
        for value in proportions.values():
            assert 0 <= value <= 1


def test_figure11_subset():
    result = figure11(scale=TINY, workloads=["gamess"])
    assert set(result.data["geomean"]) == {
        "4096B", "2048B", "1024B", "512B", "256B", "128B"}
    assert "128B async" in result.data["async_geomean"]


def test_section49_subset():
    result = section49_fu_order(scale=TINY, workloads=["gamess"])
    assert result.data["ratios"]["gamess"] == pytest.approx(1.0, abs=0.2)


def test_section65_subset():
    result = section65_power(scale=TINY, workloads=["gamess"])
    report = result.data["gamess"]
    assert report.minion_static_mw == pytest.approx(0.47, abs=0.01)


def test_dram_ablation_subset():
    result = dram_policy_ablation(scale=TINY, workloads=["lbm"])
    assert "nonspec-open-only" in result.text
