"""The stall taxonomy: runtime behaviour stays inside the documented
sets.

``Core.next_event_cycle`` names every outcome — skippable stall
classes and veto reasons — from the taxonomy in
``src/repro/pipeline/core.py``.  The code-vs-docs half of the old
sync (the tables in docs/performance.md) is enforced by the
``docs-sync`` lint checker (``repro lint --select docs-sync``, see
tests/test_docs.py); what remains here is the runtime half a static
pass cannot see: no simulation outcome may leave the documented sets.
"""

import pytest

from repro.config import default_config
from repro.defenses import registry
from repro.pipeline.core import SKIP_CLASSES, VETO_REASONS, StallProof, \
    StallVeto
from repro.sim.simulator import Simulator
from repro.workloads.spec import get_workload

def _starved(cfg):
    cfg.l1d.mshrs = 1
    cfg.l1i.mshrs = 1
    cfg.l2.mshrs = 2
    return cfg


#: Points chosen to reach every stage of the analysis: taint blocking
#: (STT), validation stalls (InvisiSpec), commit-move stalls + temporal
#: order (GhostMinion), MSHR starvation, multi-thread store traffic.
COVERAGE_POINTS = [
    ("mcf", 0.04, "GhostMinion", False),
    ("mcf", 0.04, "STT-Future", True),
    ("hmmer", 0.05, "InvisiSpec-Future", False),
    ("canneal", 0.03, "Unsafe", True),
    ("canneal", 0.03, "MuonTrap", True),
]


@pytest.mark.parametrize(
    "workload,scale,defense,starved", COVERAGE_POINTS,
    ids=["%s-%s%s" % (w, d, "-starved" if s else "")
         for w, _sc, d, s in COVERAGE_POINTS])
def test_runtime_outcomes_stay_inside_taxonomy(workload, scale, defense,
                                               starved):
    programs = get_workload(workload).build(scale)
    cfg = default_config(cores=len(programs))
    if starved:
        cfg = _starved(cfg)
    sim = Simulator(programs, registry[defense](), cfg=cfg)
    result = sim.run()
    undocumented_vetoes = set(sim.veto_counts) - VETO_REASONS
    assert not undocumented_vetoes
    undocumented_skips = set(result.skipped_by_class) - SKIP_CLASSES
    assert not undocumented_skips
    # Telemetry is runtime-only: the canonical stats payload must not
    # grow taxonomy keys.
    for name in result.stats.as_dict():
        assert name not in SKIP_CLASSES and name not in VETO_REASONS


def test_next_event_cycle_returns_taxonomy_outcomes():
    """Direct contract check: every outcome is a StallVeto carrying a
    documented reason or a StallProof whose classes are documented."""
    programs = get_workload("mcf").build(0.04)
    sim = Simulator(programs, registry["STT-Future"]())
    core = sim.cores[0]
    seen_veto = seen_proof = False
    while not core.halted and sim.cycle < 50_000:
        core.step(sim.cycle)
        sim.cycle += 1
        outcome = core.next_event_cycle(sim.cycle)
        if isinstance(outcome, StallVeto):
            seen_veto = True
            assert outcome.reason in VETO_REASONS
        else:
            seen_proof = True
            assert isinstance(outcome, StallProof)
            assert set(outcome.classes) <= SKIP_CLASSES
            assert outcome.wake > sim.cycle
            # Consume the proof as the scheduler would (including the
            # shared-L2 wakeup source), so the walk stays faithful to a
            # real event-driven run.
            wake = min(outcome.wake, sim.shared.next_event_cycle())
            if wake != float("inf") and int(wake) > sim.cycle:
                skipped = int(wake) - sim.cycle
                for handle in outcome.bumps:
                    sim.stats.add(handle, skipped)
                for replay in outcome.replays:
                    replay(sim.cycle, skipped)
                sim.cycle = int(wake)
    assert core.halted
    assert seen_veto and seen_proof
