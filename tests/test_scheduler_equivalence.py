"""Event-driven scheduler ≡ dense per-cycle loop, differentially.

The event-driven scheduler (`Simulator.run(dense=False)`, the default)
must be *observably pure* relative to the dense reference loop
(``REPRO_DENSE_LOOP=1`` / ``dense=True``): identical cycle counts, a
byte-identical stats dict (including per-cycle stall counters, which the
scheduler applies in bulk for skipped windows), and identical
architectural registers — for every defense and workload shape.
"""

import pytest

from repro.config import default_config
from repro.defenses import registry
from repro.defenses.ghostminion import ghostminion, ghostminion_breakdown
from repro.sim.simulator import Simulator, dense_loop_forced
from repro.workloads.spec import get_workload

#: Three workload shapes: a DRAM-bound pointer chase (the scheduler's
#: target, long skippable stalls), a cache-friendly stream (almost no
#: skipping), and a 4-thread run where the threads interfere through
#: the shared L2/DRAM/directory (cross-core wakeups must be exact).
WORKLOADS = [("mcf", 0.04), ("hmmer", 0.05), ("canneal", 0.03)]


def _run(workload, scale, defense, dense, cfg_fn=None):
    programs = get_workload(workload).build(scale)
    cfg = None
    if cfg_fn is not None:
        cfg = cfg_fn(default_config(cores=len(programs)))
    return Simulator(programs, defense, cfg=cfg).run(dense=dense)


def assert_equivalent(workload, scale, defense, cfg_fn=None):
    ref = _run(workload, scale, defense, dense=True, cfg_fn=cfg_fn)
    evt = _run(workload, scale, defense, dense=False, cfg_fn=cfg_fn)
    assert ref.cycles == evt.cycles
    assert ref.finished == evt.finished
    assert ref.stats.as_dict() == evt.stats.as_dict()
    assert len(ref.cores) == len(evt.cores)
    for core in range(len(ref.cores)):
        assert ref.arch_regs(core) == evt.arch_regs(core)
    assert ref.skipped_cycles == 0
    return evt


@pytest.mark.parametrize("defense_name", sorted(registry))
def test_every_defense_matches_dense_loop(defense_name):
    for workload, scale in WORKLOADS:
        assert_equivalent(workload, scale, registry[defense_name]())


@pytest.mark.parametrize("defense", [
    ghostminion(early_commit=True),
    ghostminion(full_strictness=True),
    ghostminion(strict_fu_order=True),
    ghostminion_breakdown("DMinion-Timeless"),
], ids=["early-commit", "full-strictness", "strict-fu-order", "timeless"])
def test_ghostminion_variants_match_dense_loop(defense):
    # These variants exercise the scheduler's trickiest stall analysis:
    # early-commit promotions, epoch timestamps, and the per-cycle
    # strict-order FU blocking counters.
    assert_equivalent("mcf", 0.04, defense)


def _starved_mshrs(cfg):
    """One L1 MSHR per port + two shared ones: every parallel-miss
    window hits backpressure, so retrying loads and ifetches dominate."""
    cfg.l1d.mshrs = 1
    cfg.l1i.mshrs = 1
    cfg.l2.mshrs = 2
    return cfg


#: Issue-side stall-class stress matrix: MSHR-starved configs on
#: workloads with parallel misses (stream/random_access), stores whose
#: addresses resolve late (canneal's 4-thread mix), and taint chains
#: (mcf under STT).  Every point must both match the dense loop
#: byte-for-byte *and* actually exercise the advertised skip class —
#: equivalence over a never-firing path would be vacuous.
ISSUE_STALL_POINTS = [
    ("stream", 0.04, "Unsafe", "mshr-backpressure"),
    ("stream", 0.04, "MuonTrap", "mshr-backpressure"),
    ("random_access", 0.04, "GhostMinion", "mshr-backpressure"),
    ("random_access", 0.04, "InvisiSpec-Future", "mshr-backpressure"),
    ("mcf", 0.04, "STT-Future", "stt-taint"),
    ("mcf", 0.04, "STT-Spectre", "stt-taint"),
    ("canneal", 0.03, "Unsafe", "lsq-store-addr"),
    ("canneal", 0.03, "GhostMinion", "lsq-store-addr"),
    ("canneal", 0.03, "STT-Future", "lsq-store-addr"),
    ("canneal", 0.03, "MuonTrap-Flush", "lsq-store-addr"),
    ("canneal", 0.03, "InvisiSpec-Spectre", "lsq-store-addr"),
]


@pytest.mark.parametrize(
    "workload,scale,defense_name,skip_class", ISSUE_STALL_POINTS,
    ids=["%s-%s" % (w, d) for w, _s, d, _c in ISSUE_STALL_POINTS])
def test_issue_stall_skips_match_dense_loop(workload, scale,
                                            defense_name, skip_class):
    evt = assert_equivalent(workload, scale, registry[defense_name](),
                            cfg_fn=_starved_mshrs)
    assert evt.skipped_by_class.get(skip_class, 0) > 0, (
        "point never exercised the %r stall class" % skip_class)


def test_every_defense_survives_starved_mshrs():
    """The full defense registry over the 4-thread interference mix
    with starved MSHRs: the heaviest leapfrog/timeleap cascade traffic
    (this configuration caught a latent L1-victim-cancelled-by-L2-steal
    crash in the dense path)."""
    for defense_name in sorted(registry):
        assert_equivalent("canneal", 0.03, registry[defense_name](),
                          cfg_fn=_starved_mshrs)


def test_max_insts_cap_matches_dense_loop():
    programs = get_workload("mcf").build(0.05)
    ref = Simulator(programs, registry["Unsafe"]()).run(
        dense=True, max_insts=250)
    evt = Simulator(get_workload("mcf").build(0.05),
                    registry["Unsafe"]()).run(dense=False, max_insts=250)
    assert ref.insts == evt.insts == ref.stats.get("commit.insts")
    assert ref.cycles == evt.cycles
    assert ref.stats.as_dict() == evt.stats.as_dict()


def test_event_scheduler_actually_skips():
    """The equivalence above is vacuous if nothing ever skips: the
    memory-bound chase must spend most of its cycles fast-forwarded."""
    result = _run("mcf", 0.05, registry["GhostMinion"](), dense=False)
    assert result.skipped_cycles > result.cycles // 2


def test_ifetch_presence_poll_is_side_effect_free():
    """The fetch stage's per-cycle presence poll must not perturb any
    counter — the scheduler's stall analysis calls it while skipping.

    This pins an intentional artifact change (PR 2): GhostMinion's
    I-Minion probe no longer counts a Minion read per polled cycle, so
    the §6.5 IMinion *dynamic* power estimate now reflects real
    accesses only (orders of magnitude below the seed's poll-inflated
    numbers); the static-power anchors are unaffected.
    """
    from repro.config import default_config
    from repro.pipeline.program import ProgramBuilder

    b = ProgramBuilder("tiny")
    b.li(1, 1)
    b.halt()
    sim = Simulator(b.build(), ghostminion())
    sim.run()
    hierarchy = sim.cores[0].hierarchy
    before = sim.stats.as_dict()
    for _ in range(50):
        hierarchy.ifetch_probe(0, ts=10**9, cycle=sim.cycle)
        hierarchy.ifetch_would_hit(0, ts=10**9)
    assert sim.stats.as_dict() == before


def test_dense_loop_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_DENSE_LOOP", "1")
    assert dense_loop_forced()
    result = _run("mcf", 0.04, registry["Unsafe"](), dense=None)
    assert result.skipped_cycles == 0
    monkeypatch.setenv("REPRO_DENSE_LOOP", "0")
    assert not dense_loop_forced()
    monkeypatch.delenv("REPRO_DENSE_LOOP")
    assert not dense_loop_forced()
    result = _run("mcf", 0.04, registry["Unsafe"](), dense=None)
    assert result.skipped_cycles > 0


# -- checkpoint equivalence ------------------------------------------------
#
# `Simulator.run` must be splittable at any committed-instruction
# boundary *through a serialized checkpoint*: (warm-up → snapshot →
# restore → continue) is byte-identical to one cold run — cycles, every
# stats counter, architectural registers.  This is the contract the
# engine's warm-start and region-sampling policies stand on (see
# docs/checkpoints.md).

CHECKPOINT_BOUNDARY = 300


def assert_checkpoint_equivalent(workload, scale, defense_fn,
                                 boundary=CHECKPOINT_BOUNDARY,
                                 cfg_fn=None):
    programs = get_workload(workload).build(scale)

    def make_sim():
        cfg = None
        if cfg_fn is not None:
            cfg = cfg_fn(default_config(cores=len(programs)))
        return Simulator(programs, defense_fn(), cfg=cfg)

    cold = make_sim().run()
    warm = make_sim()
    leg = warm.run(max_insts=boundary)
    assert not leg.finished, (
        "boundary %d is past the end of %s@%s — the checkpoint matrix "
        "would be vacuous" % (boundary, workload, scale))
    blob = warm.snapshot()
    resumed = Simulator.restore(blob).run()
    assert resumed.cycles == cold.cycles
    assert resumed.finished == cold.finished
    assert resumed.stats.as_dict() == cold.stats.as_dict()
    assert len(resumed.cores) == len(cold.cores)
    for core in range(len(cold.cores)):
        assert resumed.arch_regs(core) == cold.arch_regs(core)
    # The donor simulator is untouched by the snapshot: continuing it
    # matches too (snapshot is read-only).
    donor = warm.run()
    assert donor.cycles == cold.cycles
    assert donor.stats.as_dict() == cold.stats.as_dict()
    return blob


@pytest.mark.parametrize("defense_name", sorted(registry))
def test_every_defense_checkpoint_matches_cold(defense_name):
    assert_checkpoint_equivalent("mcf", 0.04,
                                 lambda: registry[defense_name]())


def test_checkpoint_matches_cold_under_starved_mshrs():
    """The multi-core interference mix with starved MSHRs: retrying
    loads, directory state and shared-MSHR quotas must all survive the
    round-trip mid-flight."""
    assert_checkpoint_equivalent("canneal", 0.03,
                                 lambda: registry["GhostMinion"](),
                                 cfg_fn=_starved_mshrs)


def test_checkpoint_restore_is_repeatable():
    """One blob, two restores: both continuations are identical (the
    warm-start policy restores the same checkpoint for every run that
    shares the prefix)."""
    programs = get_workload("mcf").build(0.04)
    sim = Simulator(programs, registry["Unsafe"]())
    sim.run(max_insts=CHECKPOINT_BOUNDARY)
    blob = sim.snapshot()
    first = Simulator.restore(blob).run()
    second = Simulator.restore(blob).run()
    assert first.cycles == second.cycles
    assert first.stats.as_dict() == second.stats.as_dict()
    assert first.arch_regs() == second.arch_regs()


# --------------------------------------------------------------------------
# Observability parity: tracing attached == tracing off, byte for byte.
# The obs layer (docs/observability.md) promises emit hooks never touch
# simulated state; this matrix pins it across the defense registry.


def _run_traced(workload, scale, defense, dense=False, interval=0):
    from repro.obs import ObsConfig, build_tracer
    programs = get_workload(workload).build(scale)
    sim = Simulator(programs, defense)
    tracer = build_tracer(ObsConfig(metrics_interval=interval))
    sim.attach_obs(tracer)
    return sim.run(dense=dense), tracer


def assert_traced_equivalent(workload, scale, defense_fn, dense=False):
    ref = _run(workload, scale, defense_fn(), dense=dense)
    traced, tracer = _run_traced(workload, scale, defense_fn(),
                                 dense=dense, interval=500)
    assert ref.cycles == traced.cycles
    assert ref.finished == traced.finished
    assert ref.stats.as_dict() == traced.stats.as_dict()
    for core in range(len(ref.cores)):
        assert ref.arch_regs(core) == traced.arch_regs(core)
    assert tracer.summary()["events"] > 0
    return tracer


@pytest.mark.parametrize("defense_name", sorted(registry))
def test_every_defense_traced_matches_untraced(defense_name):
    assert_traced_equivalent("mcf", 0.04,
                             lambda: registry[defense_name]())


def test_traced_multicore_matches_untraced():
    # Cross-core wakeups with memory events firing on shared units.
    assert_traced_equivalent("canneal", 0.03,
                             lambda: registry["GhostMinion"]())


def test_traced_dense_loop_matches_traced_event():
    """The same run traced under both schedulers: identical outcome,
    and the event scheduler additionally emits skip events."""
    dense, _ = _run_traced("mcf", 0.04, registry["GhostMinion"](),
                           dense=True)
    event, tracer = _run_traced("mcf", 0.04, registry["GhostMinion"](),
                                dense=False)
    assert dense.cycles == event.cycles
    assert dense.stats.as_dict() == event.stats.as_dict()
    assert tracer.summary()["by_kind"].get("skip", 0) > 0


def test_traced_checkpoint_roundtrip_matches_cold():
    """Snapshotting a traced simulator detaches the tracer around the
    pickle (probes close over live objects) and reattaches it; the
    restored continuation still matches a cold untraced run."""
    from repro.obs import ObsConfig, build_tracer
    defense = registry["GhostMinion"]
    cold = _run("mcf", 0.04, defense(), dense=False)
    programs = get_workload("mcf").build(0.04)
    sim = Simulator(programs, defense())
    tracer = build_tracer(ObsConfig(metrics_interval=500))
    sim.attach_obs(tracer)
    sim.run(max_insts=CHECKPOINT_BOUNDARY)
    blob = sim.snapshot()
    assert sim._obs is tracer  # reattached after the pickle
    resumed = Simulator.restore(blob).run()
    assert resumed.cycles == cold.cycles
    assert resumed.stats.as_dict() == cold.stats.as_dict()
    # The restored simulator came back with no tracer attached.
    assert Simulator.restore(blob)._obs is None
