"""Every example script must run cleanly (small inputs)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=600):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py", "hmmer", "0.05")
    assert "normalised time" in out
    assert "GhostMinion activity" in out


def test_strictness_order():
    out = run_example("strictness_order.py")
    assert "MUST NOT influence" in out
    assert "Temporal Order" in out


def test_figure_mini():
    out = run_example("figure_mini.py", "0.04")
    assert "geomean" in out
    assert "#" in out          # bar chart


def test_pipeline_trace():
    out = run_example("pipeline_trace.py")
    assert "transient (squashed) instructions" in out
    assert "squash_events" in out


def test_custom_defense_plugin():
    out = run_example("custom_defense_plugin.py", "0.04")
    assert "FlushL1 plugin demo" in out
    assert "FlushL1(also_l1i=True)" in out
    assert "wipes" in out


@pytest.mark.slow
def test_spectre_demo():
    out = run_example("spectre_demo.py")
    assert "LEAKS" in out       # unsafe
    assert "SAFE" in out        # ghostminion


@pytest.mark.slow
def test_backwards_in_time():
    out = run_example("backwards_in_time.py")
    assert "SpectreRewind" in out
    assert "LEAKS" in out and "safe" in out
