"""Functional-unit pool: ports, non-pipelined occupancy, §4.9 ordering."""

from repro.config import CoreConfig
from repro.pipeline.functional_units import FUPool


def make(strict=False, **kwargs):
    return FUPool(CoreConfig(**kwargs), strict_order=strict)


def test_pipelined_port_limit():
    pool = make(int_alus=2)
    pool.begin_cycle(0)
    assert pool.try_issue("int", 0, 1, True)
    assert pool.try_issue("int", 0, 1, True)
    assert not pool.try_issue("int", 0, 1, True)
    # ports free again next cycle
    assert pool.try_issue("int", 1, 1, True)


def test_nonpipelined_occupies_unit_for_latency():
    pool = make(muldiv_units=1)
    assert pool.try_issue("muldiv", 0, 20, False)
    pool.begin_cycle(5)
    assert not pool.try_issue("muldiv", 5, 20, False)
    pool.begin_cycle(20)
    assert pool.try_issue("muldiv", 20, 20, False)


def test_two_units_allow_two_concurrent_divides():
    pool = make(muldiv_units=2)
    assert pool.try_issue("muldiv", 0, 20, False)
    assert pool.try_issue("muldiv", 0, 20, False)
    assert not pool.try_issue("muldiv", 0, 20, False)
    assert pool.busy_units("muldiv", 10) == 2


def test_structural_hazard_stat():
    pool = make(muldiv_units=1)
    pool.try_issue("muldiv", 0, 20, False)
    pool.begin_cycle(1)
    pool.try_issue("muldiv", 1, 20, False)
    assert pool.stats.get("fu.muldiv.structural_hazard") == 1


def test_strict_order_blocks_after_failure():
    """Once an older non-pipelined op fails to issue in a cycle, younger
    same-class ops are blocked for that cycle (§4.9)."""
    pool = make(strict=True, muldiv_units=1)
    assert pool.try_issue("muldiv", 0, 20, False)    # occupies the unit
    pool.begin_cycle(3)
    assert not pool.try_issue("muldiv", 3, 20, False)  # older op fails
    assert not pool.try_issue("muldiv", 3, 20, False)  # younger blocked
    assert pool.stats.get("fu.muldiv.strict_blocked") >= 1


def test_strict_order_off_by_default():
    pool = make(muldiv_units=2)
    assert not pool.strict_order


def test_classes_are_independent():
    pool = make(int_alus=1, fp_alus=1)
    pool.begin_cycle(0)
    assert pool.try_issue("int", 0, 1, True)
    assert pool.try_issue("fp", 0, 4, True)
    assert not pool.try_issue("int", 0, 1, True)


def test_ports_query():
    pool = make(int_alus=6, fp_alus=4, muldiv_units=2)
    assert pool.ports("int") == 6
    assert pool.ports("fp") == 4
    assert pool.ports("muldiv") == 2
