"""Mini-ISA semantics and classification."""

import pytest
from hypothesis import given, strategies as st

from repro.pipeline.isa import (
    MASK64,
    Instr,
    Op,
    evaluate,
)

u64 = st.integers(0, MASK64)


@pytest.mark.parametrize("op,a,b,expected", [
    (Op.ADD, 2, 3, 5),
    (Op.SUB, 2, 3, (2 - 3) & MASK64),
    (Op.AND, 0b1100, 0b1010, 0b1000),
    (Op.OR, 0b1100, 0b1010, 0b1110),
    (Op.XOR, 0b1100, 0b1010, 0b0110),
    (Op.SHL, 1, 4, 16),
    (Op.SHR, 16, 4, 1),
    (Op.CMPLT, 2, 3, 1),
    (Op.CMPLT, 3, 2, 0),
    (Op.CMPEQ, 7, 7, 1),
    (Op.CMPEQ, 7, 8, 0),
    (Op.MOV, 42, 0, 42),
    (Op.MUL, 6, 7, 42),
    (Op.DIV, 42, 7, 6),
    (Op.DIV, 42, 0, 0),          # divide-by-zero yields 0
    (Op.REM, 43, 7, 1),
    (Op.REM, 43, 0, 0),
    (Op.FADD, 2, 3, 5),
    (Op.FMUL, 6, 7, 42),
    (Op.FDIV, 42, 7, 6),
    (Op.FSQRT, 49, 0, 7),
])
def test_evaluate(op, a, b, expected):
    assert evaluate(op, a, b, 0) == expected


def test_li_uses_immediate():
    assert evaluate(Op.LI, 999, 999, imm=17) == 17


def test_shift_amount_masked():
    assert evaluate(Op.SHL, 1, 64, 0) == 1       # 64 & 63 == 0
    assert evaluate(Op.SHR, 4, 65, 0) == 2


@given(u64, u64)
def test_results_always_fit_64_bits(a, b):
    for op in (Op.ADD, Op.SUB, Op.MUL, Op.SHL, Op.XOR):
        assert 0 <= evaluate(op, a, b, 0) <= MASK64


@given(st.integers(0, 1 << 60))
def test_fsqrt_is_floor_sqrt(value):
    root = evaluate(Op.FSQRT, value, 0, 0)
    assert root * root <= value < (root + 2) * (root + 1) + 1


def test_evaluate_rejects_non_alu():
    with pytest.raises(ValueError):
        evaluate(Op.LOAD, 0, 0, 0)


# -- classification ----------------------------------------------------------

def test_branch_classification():
    beqz = Instr(Op.BEQZ, rs1=1, target=0)
    assert beqz.is_branch and beqz.is_cond_branch
    jmp = Instr(Op.JMP, target=0)
    assert jmp.is_branch and not jmp.is_cond_branch
    ret = Instr(Op.RET)
    assert ret.is_branch and not ret.is_cond_branch


def test_mem_classification():
    load = Instr(Op.LOAD, rd=1, rs1=2)
    store = Instr(Op.STORE, rs1=2, rs2=3)
    assert load.is_load and load.is_mem and not load.is_store
    assert store.is_store and store.is_mem and not store.is_load


def test_fu_class_and_pipelining():
    assert Instr(Op.ADD, rd=1, rs1=1).fu_class == "int"
    assert Instr(Op.FADD, rd=1, rs1=1).fu_class == "fp"
    div = Instr(Op.DIV, rd=1, rs1=1, rs2=2)
    assert div.fu_class == "muldiv" and not div.pipelined
    fsqrt = Instr(Op.FSQRT, rd=1, rs1=1)
    assert not fsqrt.pipelined and fsqrt.latency > 1
    assert Instr(Op.MUL, rd=1, rs1=1, rs2=2).pipelined


def test_call_writes_link_register():
    from repro.pipeline.isa import LINK_REG
    call = Instr(Op.CALL, target=5)
    assert call.writes_reg == LINK_REG
    ret = Instr(Op.RET)
    assert ret.src_regs() == (LINK_REG,)


def test_src_regs_order():
    store = Instr(Op.STORE, rs1=2, rs2=3)
    assert store.src_regs() == (2, 3)
    load = Instr(Op.LOAD, rd=1, rs1=2)
    assert load.src_regs() == (2,)


def test_validation_errors():
    with pytest.raises(ValueError):
        Instr(Op.ADD, rd=32, rs1=0)          # register out of range
    with pytest.raises(ValueError):
        Instr(Op.BEQZ, rs1=1)                # missing target
    with pytest.raises(ValueError):
        Instr(Op.JMP)                        # missing target
