"""Functional reference interpreter."""

from repro.pipeline.isa import Op
from repro.pipeline.program import ProgramBuilder
from repro.pipeline.interpreter import run_program


def build_sum_loop(n):
    b = ProgramBuilder()
    b.li(1, n)
    b.li(2, 0)
    b.label("loop")
    b.alu(Op.ADD, 2, 2, 1)
    b.alu(Op.SUB, 1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    return b.build()


def test_sum_loop():
    state = run_program(build_sum_loop(10))
    assert state.halted
    assert state.reg(2) == sum(range(1, 11))


def test_memory_round_trip():
    b = ProgramBuilder()
    b.data(0x40, 7)
    b.li(1, 0x40)
    b.load(2, 1)
    b.alu(Op.ADD, 2, 2, imm=1)
    b.store(1, 2, imm=8)
    b.halt()
    state = run_program(b.build())
    assert state.memory[0x48] == 8


def test_uninitialised_memory_reads_zero():
    b = ProgramBuilder()
    b.load(1, None, imm=0x999)
    b.halt()
    assert run_program(b.build()).reg(1) == 0


def test_call_and_ret():
    b = ProgramBuilder()
    b.li(1, 0)
    b.call("sub")
    b.call("sub")
    b.halt()
    b.label("sub")
    b.alu(Op.ADD, 1, 1, imm=1)
    b.ret()
    state = run_program(b.build())
    assert state.reg(1) == 2


def test_beqz_taken_and_not_taken():
    b = ProgramBuilder()
    b.li(1, 0)
    b.beqz(1, "skip")
    b.li(2, 99)             # skipped
    b.label("skip")
    b.li(3, 5)
    b.halt()
    state = run_program(b.build())
    assert state.reg(2) == 0 and state.reg(3) == 5


def test_max_steps_guard():
    b = ProgramBuilder()
    b.label("spin")
    b.jmp("spin")
    state = run_program(b.build(), max_steps=100)
    assert not state.halted
    assert state.committed == 100


def test_trace_records_committed_path():
    b = ProgramBuilder()
    b.li(1, 1)
    b.beqz(1, "skip")
    b.nop()
    b.label("skip")
    b.halt()
    state = run_program(b.build(), trace=True)
    pcs = [pc for pc, _op in state.trace]
    assert pcs == [0, 1, 2, 3]


def test_falling_off_end_halts():
    b = ProgramBuilder()
    b.nop()
    state = run_program(b.build())
    assert state.halted


def test_rdcyc_is_deterministic_stub():
    b = ProgramBuilder()
    b.nop()
    b.emit(Op.RDCYC, rd=1)
    b.halt()
    state = run_program(b.build())
    assert state.reg(1) == 1  # committed count at that point
