"""Program container and builder."""

import pytest

from repro.pipeline.isa import Op
from repro.pipeline.program import Program, ProgramBuilder


def test_forward_label_reference():
    b = ProgramBuilder()
    b.jmp("end")
    b.nop()
    b.label("end")
    b.halt()
    program = b.build()
    assert program.instrs[0].target == 2


def test_backward_label_reference():
    b = ProgramBuilder()
    b.label("top")
    b.nop()
    b.jmp("top")
    program = b.build()
    assert program.instrs[1].target == 0


def test_numeric_target_passthrough():
    b = ProgramBuilder()
    b.jmp(1)
    b.halt()
    assert b.build().instrs[0].target == 1


def test_undefined_label_raises():
    b = ProgramBuilder()
    b.jmp("nowhere")
    with pytest.raises(ValueError):
        b.build()


def test_duplicate_label_raises():
    b = ProgramBuilder()
    b.label("x")
    with pytest.raises(ValueError):
        b.label("x")


def test_out_of_range_target_rejected():
    with pytest.raises(ValueError):
        Program(instrs=[ProgramBuilder().build().instrs]
                if False else
                [__import__("repro.pipeline.isa",
                            fromlist=["Instr"]).Instr(Op.JMP, target=5)])


def test_data_and_block():
    b = ProgramBuilder()
    b.data(0x100, 42)
    b.data_block(0x200, [1, 2, 3])
    b.halt()
    program = b.build()
    assert program.memory[0x100] == 42
    assert program.memory[0x200 + 8] == 2


def test_convenience_emitters_encode_correctly():
    b = ProgramBuilder()
    b.li(1, 5)
    b.add(2, 1, imm=3)
    b.load(3, 1, imm=0x10)
    b.store(1, 3, imm=0x20)
    b.beqz(3, "end")
    b.call("end")
    b.ret()
    b.label("end")
    b.halt()
    program = b.build()
    ops = [i.op for i in program.instrs]
    assert ops == [Op.LI, Op.ADD, Op.LOAD, Op.STORE, Op.BEQZ, Op.CALL,
                   Op.RET, Op.HALT]


def test_here_reports_position():
    b = ProgramBuilder()
    assert b.here() == 0
    b.nop()
    assert b.here() == 1


def test_builder_is_reusable_after_build():
    b = ProgramBuilder()
    b.halt()
    first = b.build()
    second = b.build()
    assert len(first) == len(second) == 1
    assert first.instrs is not second.instrs
