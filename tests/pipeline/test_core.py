"""Out-of-order core behaviour: correctness, speculation, forwarding."""

from repro.defenses import registry
from repro.pipeline.isa import Op
from repro.pipeline.interpreter import run_program as interp
from repro.pipeline.program import ProgramBuilder
from repro.sim.runner import run_program as simrun
from repro.sim.simulator import Simulator


def run_both(program, defense="Unsafe"):
    ref = interp(program, max_steps=1_000_000)
    assert ref.halted
    result = simrun(program, defense)
    assert result.finished, "simulation did not halt"
    return ref, result


def test_straightline_alu():
    b = ProgramBuilder()
    b.li(1, 6)
    b.li(2, 7)
    b.alu(Op.MUL, 3, 1, 2)
    b.alu(Op.XOR, 4, 3, 1)
    b.halt()
    ref, result = run_both(b.build())
    assert result.arch_regs() == ref.regs


def test_loop_with_memory():
    b = ProgramBuilder()
    b.li(1, 20)
    b.li(2, 0)
    b.li(3, 0x1000)
    b.label("loop")
    b.load(4, 3)
    b.alu(Op.ADD, 2, 2, 4)
    b.store(3, 2, imm=0x4000)
    b.alu(Op.ADD, 3, 3, imm=8)
    b.alu(Op.SUB, 1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    for i in range(32):
        b.data(0x1000 + i * 8, i * 3)
    ref, result = run_both(b.build())
    assert result.arch_regs() == ref.regs
    assert {k: v for k, v in result.cores[0].memory.items()
            if k >= 0x4000} == \
        {k: v for k, v in ref.memory.items() if k >= 0x4000}


def test_wrong_path_execution_leaves_no_architectural_trace():
    """A mispredicted branch's wrong path executes transiently (and
    pollutes the cache under Unsafe) but never commits."""
    b = ProgramBuilder()
    b.data(0x100, 1)
    b.load(1, None, imm=0x100)      # slow condition
    b.bnez(1, "taken")              # actually taken; predicted NT
    b.li(2, 0xBAD)                  # wrong path
    b.store(None, 2, imm=0x200) if False else b.li(3, 0xBAD)
    b.label("taken")
    b.li(4, 7)
    b.halt()
    ref, result = run_both(b.build())
    assert result.arch_regs() == ref.regs
    assert result.arch_regs()[2] == 0
    assert result.arch_regs()[3] == 0
    assert result.stats.get("squash.events") >= 1


def test_wrong_path_load_fills_cache_under_unsafe():
    b = ProgramBuilder()
    b.data(0x100, 1)
    b.load(1, None, imm=0x100)
    b.bnez(1, "taken")
    b.load(2, None, imm=0x8000)     # transient load
    b.label("taken")
    # keep the program alive until the transient miss returns
    b.li(5, 120)
    b.label("spin")
    b.alu(Op.SUB, 5, 5, imm=1)
    b.bnez(5, "spin")
    b.halt()
    result = simrun(b.build(), "Unsafe")
    hierarchy = result.cores[0].hierarchy
    assert hierarchy.dport.cache.contains(0x8000 >> 6)


def test_store_to_load_forwarding():
    b = ProgramBuilder()
    b.li(1, 0x300)
    b.li(2, 77)
    b.store(1, 2)
    b.load(3, 1)                    # forwards from the store queue
    b.halt()
    ref, result = run_both(b.build())
    assert result.arch_regs()[3] == 77
    assert result.stats.get("lsq.forwards") >= 1


def test_call_ret_with_ras():
    b = ProgramBuilder()
    b.li(1, 0)
    b.li(2, 4)
    b.label("loop")
    b.call("sub")
    b.alu(Op.SUB, 2, 2, imm=1)
    b.bnez(2, "loop")
    b.halt()
    b.label("sub")
    b.alu(Op.ADD, 1, 1, imm=10)
    b.ret()
    ref, result = run_both(b.build())
    assert result.arch_regs()[1] == 40


def test_rdcyc_monotone_along_dependencies():
    b = ProgramBuilder()
    b.emit(Op.RDCYC, rd=1)
    b.load(2, None, imm=0x5000)     # a slow load
    b.emit(Op.RDCYC, rd=3, rs1=2)   # ordered after the load
    b.halt()
    result = simrun(b.build(), "Unsafe")
    regs = result.arch_regs()
    assert regs[3] > regs[1]


def test_division_by_zero_commits_zero():
    b = ProgramBuilder()
    b.li(1, 5)
    b.li(2, 0)
    b.alu(Op.DIV, 3, 1, 2)
    b.halt()
    ref, result = run_both(b.build())
    assert result.arch_regs()[3] == 0


def test_commit_is_in_order():
    """IPC <= commit width, cycles >= insts / width."""
    b = ProgramBuilder()
    for i in range(64):
        b.li(1, i)
    b.halt()
    result = simrun(b.build(), "Unsafe")
    assert result.cycles >= result.insts / 8


def test_mispredict_penalty_costs_cycles():
    def build(outcome):
        b = ProgramBuilder()
        b.data(0x100, outcome)
        # warm-up: teach the predictor the opposite outcome
        for _ in range(3):
            b.load(1, None, imm=0x100)
        b.load(1, None, imm=0x100)
        b.bnez(1, "t")
        b.nop()
        b.label("t")
        b.halt()
        return b.build()
    taken = simrun(build(1), "Unsafe")      # untrained -> mispredict
    not_taken = simrun(build(0), "Unsafe")  # matches the NT default
    assert taken.cycles > not_taken.cycles


def test_simulator_respects_max_cycles():
    b = ProgramBuilder()
    b.label("spin")
    b.jmp("spin")
    sim = Simulator(b.build(), registry["Unsafe"]())
    result = sim.run(max_cycles=500)
    assert not result.finished
    assert result.cycles == 500


def test_deep_speculation_nested_branches():
    """Multiple in-flight unresolved branches squash correctly."""
    b = ProgramBuilder()
    b.data(0x100, 1)
    b.data(0x140, 1)
    b.load(1, None, imm=0x100)
    b.load(2, None, imm=0x140)
    b.bnez(1, "a")                  # both mispredict (default NT)
    b.li(3, 1)
    b.label("a")
    b.bnez(2, "b")
    b.li(4, 1)
    b.label("b")
    b.li(5, 42)
    b.halt()
    ref, result = run_both(b.build())
    assert result.arch_regs() == ref.regs
    assert result.arch_regs()[5] == 42
