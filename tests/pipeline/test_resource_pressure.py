"""Core behaviour under structural resource pressure: every bounded
queue (ROB/IQ/LQ/SQ/MSHR/fetch) must throttle without deadlock or
architectural divergence."""

import dataclasses

import pytest

from repro.config import default_config
from repro.defenses import registry
from repro.pipeline.interpreter import run_program as interp
from repro.pipeline.isa import Op
from repro.pipeline.program import ProgramBuilder
from repro.sim.simulator import Simulator


def tiny_cfg(**core_kwargs):
    cfg = default_config()
    cfg.core = dataclasses.replace(cfg.core, **core_kwargs)
    return cfg


def run_with(cfg, program):
    sim = Simulator(program, registry["Unsafe"](), cfg=cfg)
    result = sim.run(max_cycles=500_000)
    assert result.finished, "deadlock under resource pressure"
    return result


def load_burst_program(n=24):
    b = ProgramBuilder()
    for i in range(n):
        b.load(1 + i % 8, None, imm=0x9000 + i * 64)
    b.halt()
    return b.build()


def store_burst_program(n=24):
    b = ProgramBuilder()
    b.li(1, 42)
    for i in range(n):
        b.store(None, 1, imm=0x9000 + i * 64) if False else \
            b.emit(Op.STORE, rs1=1, rs2=1, imm=0x9000 + i * 64)
    b.halt()
    return b.build()


@pytest.mark.parametrize("kwargs", [
    dict(rob_entries=8),
    dict(iq_entries=2),
    dict(lq_entries=2),
    dict(sq_entries=2),
    dict(fetch_width=1, issue_width=1, commit_width=1),
])
def test_tiny_structures_still_complete(kwargs):
    program = load_burst_program()
    ref = interp(program, max_steps=100_000)
    result = run_with(tiny_cfg(**kwargs), program)
    assert result.arch_regs() == ref.regs


def test_tiny_sq_with_stores():
    program = store_burst_program()
    ref = interp(program, max_steps=100_000)
    result = run_with(tiny_cfg(sq_entries=2), program)
    assert result.cores[0].memory == ref.memory


def test_one_mshr_everywhere():
    cfg = default_config()
    cfg.l1d = dataclasses.replace(cfg.l1d, mshrs=1)
    cfg.l1i = dataclasses.replace(cfg.l1i, mshrs=1)
    cfg.l2 = dataclasses.replace(cfg.l2, mshrs=1)
    cfg.l2_prefetcher = False
    program = load_burst_program(12)
    ref = interp(program, max_steps=100_000)
    result = run_with(cfg, program)
    assert result.arch_regs() == ref.regs


def test_one_mshr_under_ghostminion_leapfrogging():
    """Leapfrogging with a single MSHR must not livelock."""
    cfg = default_config()
    cfg.l1d = dataclasses.replace(cfg.l1d, mshrs=1)
    cfg.l2_prefetcher = False
    program = load_burst_program(12)
    ref = interp(program, max_steps=100_000)
    sim = Simulator(program, registry["GhostMinion"](), cfg=cfg)
    result = sim.run(max_cycles=500_000)
    assert result.finished
    assert result.arch_regs() == ref.regs


def test_narrow_pipeline_is_slower():
    wide = run_with(default_config(), load_burst_program())
    narrow = run_with(
        tiny_cfg(fetch_width=1, issue_width=1, commit_width=1),
        load_burst_program())
    assert narrow.cycles > wide.cycles


def test_tiny_rob_bounds_ilp():
    program = load_burst_program()
    big = run_with(default_config(), program)
    small = run_with(tiny_cfg(rob_entries=4), program)
    assert small.cycles > big.cycles
