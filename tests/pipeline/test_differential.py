"""Differential testing: random programs must produce identical
architectural state under the reference interpreter, the out-of-order
core, and *every* defense.

This is the strongest correctness property in the suite: no protection
scheme may change what a program computes, only when.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.defenses import FIGURE_ORDER, registry
from repro.pipeline.isa import Op
from repro.pipeline.interpreter import run_program as interp
from repro.pipeline.program import ProgramBuilder
from repro.sim.runner import run_program as simrun

ALU_CHOICES = [Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.MUL, Op.CMPLT,
               Op.CMPEQ, Op.SHR, Op.FADD, Op.FMUL]
SLOW_CHOICES = [Op.DIV, Op.REM, Op.FDIV, Op.FSQRT]
DATA_BASE = 0x2000
STORE_BASE = 0x6000
REGION_WORDS = 64

step = st.tuples(
    st.sampled_from(["alu", "slow", "load", "store", "branch"]),
    st.integers(1, 7),              # dest register r1..r7
    st.integers(1, 7),              # source register
    st.integers(0, 10),             # op selector / immediate seed
)


def build_random_program(steps, loop_iters=3):
    """A guaranteed-terminating random program.

    Structure: a counted outer loop whose body is the generated step
    list; conditional branches only jump *forward* within the body, so
    every path terminates.  Loads/stores hit a bounded region.
    """
    b = ProgramBuilder("hypothesis")
    for word in range(REGION_WORDS):
        b.data(DATA_BASE + word * 8, (word * 2654435761) & 0xFFFF)
    counter = 15
    b.li(counter, loop_iters)
    for reg in range(1, 8):
        b.li(reg, reg * 13 + 1)
    b.label("loop")
    pending_branches = []
    for idx, (kind, rd, rs, sel) in enumerate(steps):
        if kind == "alu":
            op = ALU_CHOICES[sel % len(ALU_CHOICES)]
            b.alu(op, rd, rs, (rs % 7) + 1)
        elif kind == "slow":
            op = SLOW_CHOICES[sel % len(SLOW_CHOICES)]
            if op in (Op.FSQRT,):
                b.alu(op, rd, rs)
            else:
                b.alu(op, rd, rs, (rs % 7) + 1)
        elif kind == "load":
            b.alu(Op.AND, 8, rs, imm=(REGION_WORDS - 1) * 8)
            b.alu(Op.ADD, 8, 8, imm=DATA_BASE)
            b.load(rd, 8)
        elif kind == "store":
            b.alu(Op.AND, 8, rs, imm=(REGION_WORDS - 1) * 8)
            b.alu(Op.ADD, 8, 8, imm=STORE_BASE)
            b.store(8, rd)
        else:  # forward branch over the next emitted block
            label = "skip_%d" % idx
            b.alu(Op.AND, 9, rs, imm=1)
            b.bnez(9, label)
            b.alu(Op.XOR, rd, rd, rs)
            pending_branches.append(label)
            b.label(label)
    b.alu(Op.SUB, counter, counter, imm=1)
    b.bnez(counter, "loop")
    b.halt()
    return b.build()


@settings(max_examples=25, deadline=None)
@given(st.lists(step, min_size=1, max_size=25))
def test_core_matches_interpreter(steps):
    program = build_random_program(steps)
    ref = interp(program, max_steps=200_000)
    assert ref.halted
    result = simrun(program, "Unsafe")
    assert result.finished
    assert result.arch_regs() == ref.regs
    assert result.cores[0].memory == ref.memory


@settings(max_examples=8, deadline=None)
@given(st.lists(step, min_size=3, max_size=18))
def test_every_defense_preserves_architecture(steps):
    """Defenses change timing, never values."""
    program = build_random_program(steps)
    ref = interp(program, max_steps=200_000)
    assert ref.halted
    for name in ["Unsafe"] + FIGURE_ORDER:
        result = simrun(program, name)
        assert result.finished, name
        assert result.arch_regs() == ref.regs, name
        assert result.cores[0].memory == ref.memory, name


@pytest.mark.parametrize("defense", ["Unsafe"] + FIGURE_ORDER)
def test_known_tricky_program_all_defenses(defense):
    """A hand-picked stress mix: dependent loads, stores, divides and
    unpredictable branches."""
    steps = [
        ("load", 1, 2, 0), ("branch", 2, 1, 0), ("slow", 3, 1, 0),
        ("store", 1, 3, 0), ("load", 4, 3, 2), ("branch", 5, 4, 1),
        ("alu", 6, 4, 5), ("store", 6, 1, 0), ("load", 7, 6, 3),
        ("slow", 2, 7, 3), ("branch", 3, 2, 2), ("alu", 1, 3, 9),
    ]
    program = build_random_program(steps, loop_iters=5)
    ref = interp(program, max_steps=200_000)
    assert ref.halted
    result = simrun(program, defense)
    assert result.finished
    assert result.arch_regs() == ref.regs
    assert result.cores[0].memory == ref.memory
