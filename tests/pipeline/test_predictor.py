"""Tournament predictor, BTB and RAS."""

from repro.config import PredictorConfig
from repro.pipeline.branch_predictor import (
    BranchTargetBuffer,
    ReturnAddressStack,
    TournamentPredictor,
)


def train(pred, pc, outcome, times):
    for _ in range(times):
        taken, ckpt = pred.predict(pc)
        pred.update(pc, outcome, ckpt)


def accuracy(pred, pc, outcomes):
    correct = 0
    for outcome in outcomes:
        taken, ckpt = pred.predict(pc)
        correct += taken == outcome
        pred.update(pc, outcome, ckpt)
    return correct / len(outcomes)


def test_learns_always_taken():
    pred = TournamentPredictor()
    # enough repetitions for the local history register to saturate
    train(pred, pc=40, outcome=True, times=16)
    taken, _ = pred.predict(40)
    assert taken


def test_learns_always_not_taken():
    pred = TournamentPredictor()
    train(pred, pc=40, outcome=False, times=4)
    taken, _ = pred.predict(40)
    assert not taken


def test_learns_alternating_pattern_via_history():
    """A strict T/NT alternation is perfectly predictable with local
    history; 2-bit counters alone would miss half."""
    pred = TournamentPredictor()
    pattern = [True, False] * 60
    assert accuracy(pred, 40, pattern) > 0.8


def test_initial_prediction_is_weakly_not_taken():
    taken, _ = TournamentPredictor().predict(123)
    assert not taken


def test_ghr_checkpoint_restore():
    pred = TournamentPredictor()
    _taken, ckpt = pred.predict(40)
    ghr_speculative = pred.ghr
    pred.restore_ghr(ckpt, actual_taken=True)
    assert pred.ghr == ((ckpt << 1) | 1) & ((1 << pred.GHR_BITS) - 1)
    assert pred.ghr != ghr_speculative or True  # shape check only


def test_two_branches_do_not_alias():
    cfg = PredictorConfig()
    pred = TournamentPredictor(cfg)
    train(pred, pc=40, outcome=True, times=16)
    train(pred, pc=41, outcome=False, times=16)
    assert pred.predict(40)[0] is True
    assert pred.predict(41)[0] is False


def test_btb():
    btb = BranchTargetBuffer(entries=16)
    assert btb.predict(5) is None
    btb.update(5, 99)
    assert btb.predict(5) == 99
    btb.update(5 + 16, 123)       # same index, different tag
    assert btb.predict(5) is None


def test_ras_push_pop():
    ras = ReturnAddressStack(entries=4)
    ras.push(10)
    ras.push(20)
    assert ras.pop() == 20
    assert ras.pop() == 10
    assert ras.pop() is None


def test_ras_overflow_drops_oldest():
    ras = ReturnAddressStack(entries=2)
    ras.push(1)
    ras.push(2)
    ras.push(3)
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert ras.pop() is None


def test_ras_checkpoint_restore():
    ras = ReturnAddressStack(entries=4)
    ras.push(10)
    ckpt = ras.checkpoint()
    ras.push(20)
    ras.pop()
    ras.pop()
    ras.restore(ckpt)
    assert ras.pop() == 10
