"""The lint framework: every checker is non-vacuous, the engine's
select/ignore/baseline/JSON surfaces work, and the real tree is clean.

Each checker gets a fixture repository seeded with a deliberate
violation and must fire (catching the "lint passes because it scans
nothing" failure mode); the clean-tree smoke pins the actual
repository to zero unsuppressed findings; and the digest checker's
embedded v1 field set is cross-checked against the golden cache token
so the two pins cannot drift apart silently.
"""

import json
import os
import textwrap

import pytest

from repro.lintkit import (
    BaselineError,
    LintContext,
    load_baseline,
    report_to_json,
    run_lint,
)
from repro.lintkit.baseline import _parse_minimal

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir))

ALL_CHECKERS = ["snapshot-completeness", "proof-purity", "stats-slots",
                "digest-stability", "determinism", "docs-sync",
                "obs-guards", "fuzz-bounds"]


def make_repo(tmp_path, files):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return str(tmp_path)


def codes_of(report):
    return sorted(f.code for f in report.findings)


# ---------------------------------------------------------------------------
# non-vacuity: every checker fires on a seeded violation
# ---------------------------------------------------------------------------


def test_snapshot_checker_fires(tmp_path):
    root = make_repo(tmp_path, {
        "src/repro/snapshot.py": """\
            class SnapshotMixin:
                _SNAPSHOT_EXCLUDE = ()
            """,
        "src/repro/memory/widget.py": """\
            from repro.snapshot import SnapshotMixin

            class Widget(SnapshotMixin):
                _SNAPSHOT_EXCLUDE = ("cfg", "ghost")

                def __init__(self, cfg, stats):
                    self.cfg = cfg
                    self.stats = stats
                    self.rows = []
            """,
    })
    report = run_lint(root=root, select=["snapshot-completeness"])
    assert codes_of(report) == ["stale-exclude", "unsnapshotted-wiring"]
    wiring = [f for f in report.findings
              if f.code == "unsnapshotted-wiring"][0]
    assert wiring.symbol == "Widget.stats"
    stale = [f for f in report.findings if f.code == "stale-exclude"][0]
    assert stale.symbol == "Widget.ghost"


def test_snapshot_checker_handles_exclude_extension(tmp_path):
    """Base._SNAPSHOT_EXCLUDE + ("extra",) composes with inheritance,
    and inherited exclusions cover inherited __init__ wiring."""
    root = make_repo(tmp_path, {
        "src/repro/snapshot.py": """\
            class SnapshotMixin:
                _SNAPSHOT_EXCLUDE = ()
            """,
        "src/repro/memory/widget.py": """\
            from repro.snapshot import SnapshotMixin

            class Base(SnapshotMixin):
                _SNAPSHOT_EXCLUDE = ("cfg", "stats")

                def __init__(self, cfg, stats):
                    self.cfg = cfg
                    self.stats = stats

            class Derived(Base):
                _SNAPSHOT_EXCLUDE = Base._SNAPSHOT_EXCLUDE + ("hooks",)

                def __init__(self, cfg, stats):
                    super().__init__(cfg, stats)
                    self.hooks = []
            """,
    })
    report = run_lint(root=root, select=["snapshot-completeness"])
    assert report.clean, report.render_text()


def test_snapshot_checker_skips_bespoke_protocols(tmp_path):
    root = make_repo(tmp_path, {
        "src/repro/snapshot.py": """\
            class SnapshotMixin:
                _SNAPSHOT_EXCLUDE = ()
            """,
        "src/repro/memory/widget.py": """\
            from repro.snapshot import SnapshotMixin

            class Custom(SnapshotMixin):
                def __init__(self, stats):
                    self.stats = stats

                def snapshot_state(self):
                    return {}
            """,
    })
    report = run_lint(root=root, select=["snapshot-completeness"])
    assert report.clean, report.render_text()


def test_purity_checker_fires(tmp_path):
    root = make_repo(tmp_path, {
        "src/repro/memory/probe.py": """\
            class Cache:
                def probe_line(self, line):
                    self.hits += 1
                    self._table[line] = 1
                    self.stats.add(3)
                    bumps = []
                    bumps.append(self._h_stall)
                    replays = [lambda c, s: self.fill(line)]
                    return bumps, replays

                def load_block_proof(self, addr):
                    wake = min(addr, 4)
                    seen = set()
                    seen.add(addr)
                    return wake
            """,
    })
    report = run_lint(root=root, select=["proof-purity"])
    assert codes_of(report) == ["attr-assign", "aug-assign",
                                "mutating-call"]
    assert all(f.symbol == "Cache.probe_line"
               for f in report.findings), report.render_text()


def test_purity_checker_tracks_aliases(tmp_path):
    """A local aliasing shared state is shared; iterating a shared
    container yields shared items."""
    root = make_repo(tmp_path, {
        "src/repro/memory/probe.py": """\
            class Cache:
                def probe_alias(self, line):
                    table = self._table
                    table.pop(line)
                    return None

                def next_event_cycle(self, cycle):
                    for entry in self._rows:
                        entry.update(cycle)
                    return cycle
            """,
    })
    report = run_lint(root=root, select=["proof-purity"])
    assert codes_of(report) == ["mutating-call", "mutating-call"]


def test_stats_slots_checker_fires(tmp_path):
    hot_stub = {name: "" for name in (
        "src/repro/pipeline/hotcore.py", "src/repro/memory/mshr.py",
        "src/repro/memory/hierarchy.py")}
    root = make_repo(tmp_path, dict(hot_stub, **{
        "src/repro/memory/cache.py": """\
            class C:
                def __init__(self, stats):
                    self._h = stats.handle("c.hits")

                def step(self, stats):
                    stats.bump("c.hits")
                    slot = stats.handle("c.misses")
                    return slot
            """,
        "src/repro/analysis/stats.py": """\
            class Stats:
                def bump(self, name):
                    slot = self.handle(name)
            """,
    }))
    report = run_lint(root=root, select=["stats-slots"])
    assert codes_of(report) == ["late-intern", "string-bump"]
    # analysis/stats.py is exempt on both rules; __init__ interning ok.
    assert all(f.path == "src/repro/memory/cache.py"
               for f in report.findings)


def test_determinism_checker_fires(tmp_path):
    root = make_repo(tmp_path, {
        "src/repro/sim/clocky.py": """\
            import os
            import random
            import time

            def stamp():
                return time.time()

            def token():
                return os.urandom(8)

            def pick():
                return random.random()

            def rng():
                return random.Random()

            def seeded(seed):
                return random.Random(seed)

            def interval():
                return time.perf_counter()
            """,
    })
    report = run_lint(root=root, select=["determinism"])
    assert codes_of(report) == sorted([
        "wall-clock", "entropy", "global-random", "unseeded-random"])


def test_digest_checker_fires_on_new_unstripped_field(tmp_path):
    with open(os.path.join(REPO_ROOT, "src/repro/config.py")) as fh:
        config_text = fh.read()
    with open(os.path.join(REPO_ROOT, "src/repro/exp/spec.py")) as fh:
        spec_text = fh.read()
    marker = "    l2_mshr_partitioning: bool = False"
    assert marker in config_text
    root = make_repo(tmp_path, {
        "src/repro/config.py": config_text.replace(
            marker, marker + "\n    new_knob: int = 0"),
        "src/repro/exp/spec.py": spec_text,
    })
    report = run_lint(root=root, select=["digest-stability"])
    assert codes_of(report) == ["missing-post-v1-default"]
    assert report.findings[0].symbol == "new_knob"


def test_digest_checker_fires_on_stale_entry_and_lost_v1_field(
        tmp_path):
    with open(os.path.join(REPO_ROOT, "src/repro/config.py")) as fh:
        config_text = fh.read()
    with open(os.path.join(REPO_ROOT, "src/repro/exp/spec.py")) as fh:
        spec_text = fh.read()
    root = make_repo(tmp_path, {
        "src/repro/config.py": config_text.replace(
            "    model_tlb: bool = False\n", ""),
        "src/repro/exp/spec.py": spec_text.replace(
            '    ("config.core.predictor.kind", "tournament"),',
            '    ("config.core.predictor.kind", "tournament"),\n'
            '    ("config.bogus.field", None),'),
    })
    report = run_lint(root=root, select=["digest-stability"])
    assert codes_of(report) == ["missing-v1-field",
                                "stale-post-v1-entry"]
    symbols = {f.code: f.symbol for f in report.findings}
    assert symbols["missing-v1-field"] == "model_tlb"
    assert symbols["stale-post-v1-entry"] == "config.bogus.field"


def test_digest_v1_set_matches_golden_token():
    """The checker's embedded v1 field set is exactly the config key
    set of the golden cache token — the two pins cannot drift apart."""
    import test_registry
    from repro.lintkit.checkers.digest import V1_CONFIG_PATHS
    token = json.loads(test_registry.GOLDEN_TOKEN_PR2)

    def leaves(node, prefix=""):
        for key, value in node.items():
            if isinstance(value, dict):
                yield from leaves(value, prefix + key + ".")
            else:
                yield prefix + key

    assert set(leaves(token["config"])) == set(V1_CONFIG_PATHS)


def test_docs_sync_checker_fires(tmp_path):
    root = make_repo(tmp_path, {
        "src/repro/pipeline/core.py": """\
            SKIP_MEM = "mem-stall"
            SKIP_CLASSES = frozenset({SKIP_MEM})
            VETO_REASONS = frozenset({"veto-a"})
            """,
        "docs/architecture.md": """\
            # Architecture
            [performance](performance.md)
            """,
        "docs/performance.md": """\
            # Performance
            [missing page](nowhere.md)
            [bad anchor](architecture.md#no-such-heading)

            <!-- stall-taxonomy:skip -->
            | `mem-stall` | skip |
            | `bogus-row` | skip |

            <!-- stall-taxonomy:veto -->
            | `veto-a` | veto |
            """,
        "docs/orphan.md": "# Orphan\n",
    })
    report = run_lint(root=root, select=["docs-sync"])
    assert codes_of(report) == sorted([
        "broken-link", "broken-anchor", "unmapped-page",
        "taxonomy-drift"])
    drift = [f for f in report.findings
             if f.code == "taxonomy-drift"][0]
    assert drift.symbol == "bogus-row"
    orphan = [f for f in report.findings
              if f.code == "unmapped-page"][0]
    assert orphan.symbol == "orphan.md"


# ---------------------------------------------------------------------------
# engine: selection, baseline, JSON, CLI
# ---------------------------------------------------------------------------

DIRTY_SIM = {
    "src/repro/sim/clocky.py": """\
        import time

        def stamp():
            return time.time()
        """,
}


def test_select_and_ignore(tmp_path):
    root = make_repo(tmp_path, dict(DIRTY_SIM))
    both = run_lint(root=root,
                    select=["determinism", "stats-slots"])
    assert both.checkers == ["determinism", "stats-slots"]
    ignored = run_lint(root=root,
                       select=["determinism", "stats-slots"],
                       ignore=["determinism"])
    assert ignored.checkers == ["stats-slots"]


def test_unknown_checker_raises_with_suggestions(tmp_path):
    from repro.registry import UnknownComponentError
    root = make_repo(tmp_path, dict(DIRTY_SIM))
    with pytest.raises(UnknownComponentError) as exc:
        run_lint(root=root, select=["determinsim"])
    assert "determinism" in str(exc.value)


def test_baseline_suppresses_and_reports_unused(tmp_path):
    root = make_repo(tmp_path, dict(DIRTY_SIM, **{
        "lint-baseline.toml": """\
            [[suppress]]
            checker = "determinism"
            path = "src/repro/sim/clocky.py"
            code = "wall-clock"
            reason = "fixture: wall clock never reaches payloads"

            [[suppress]]
            checker = "determinism"
            path = "src/repro/sim/gone.py"
            reason = "fixture: stale entry"
            """,
    }))
    report = run_lint(root=root, select=["determinism"])
    assert report.clean
    assert len(report.suppressed) == 1
    unused = report.unused_suppressions()
    assert [entry.path for entry in unused] == ["src/repro/sim/gone.py"]


def test_baseline_requires_reason(tmp_path):
    root = make_repo(tmp_path, dict(DIRTY_SIM, **{
        "lint-baseline.toml": """\
            [[suppress]]
            checker = "determinism"
            path = "src/repro/sim/clocky.py"
            """,
    }))
    with pytest.raises(BaselineError):
        run_lint(root=root, select=["determinism"])


def test_minimal_toml_parser_matches_subset():
    """The py3.10 fallback reader parses the emitted subset exactly."""
    text = ('# comment\n\n[[suppress]]\nchecker = "a"\npath = "b"\n'
            'reason = "because"\n\n[[suppress]]\nchecker = "c"\n'
            'path = "d"\ncode = "e"\nsymbol = "f"\nreason = "why"\n')
    entries = _parse_minimal(text, "test")
    assert [(e.checker, e.path, e.code, e.symbol) for e in entries] \
        == [("a", "b", "", ""), ("c", "d", "e", "f")]
    # The shipped baseline reads identically through either parser
    # (entry line numbers differ: tomllib does not report them).
    shipped = load_baseline(
        os.path.join(REPO_ROOT, "lint-baseline.toml"))
    with open(os.path.join(REPO_ROOT, "lint-baseline.toml")) as fh:
        fallback = _parse_minimal(fh.read(), "lint-baseline.toml")
    assert [dict(e.describe(), line=0) for e in shipped] \
        == [dict(e.describe(), line=0) for e in fallback]


def test_json_report_round_trip(tmp_path):
    root = make_repo(tmp_path, dict(DIRTY_SIM))
    report = run_lint(root=root, select=["determinism"])
    payload = json.loads(report_to_json(report))
    assert payload["version"] == 1
    assert payload["clean"] is False
    assert payload["checkers"] == ["determinism"]
    assert payload["counts"] == {"determinism": 1}
    (finding,) = payload["findings"]
    assert set(finding) == {"checker", "path", "line", "symbol",
                            "code", "message", "fingerprint"}
    assert finding["path"] == "src/repro/sim/clocky.py"
    assert finding["fingerprint"] == \
        "determinism:src/repro/sim/clocky.py:time.time:wall-clock"
    assert payload["suppressed"] == []
    assert payload["unused_suppressions"] == []


def test_syntax_errors_surface_as_findings(tmp_path):
    root = make_repo(tmp_path, {
        "src/repro/sim/broken.py": "def oops(:\n",
    })
    report = run_lint(root=root, select=["determinism"])
    assert [f.code for f in report.findings] == ["syntax-error"]
    assert report.findings[0].checker == "lintkit"


def test_cli_lint_exit_codes_and_json(tmp_path, capsys):
    from repro.cli import main
    root = make_repo(tmp_path, dict(DIRTY_SIM))
    assert main(["lint", "--root", root,
                 "--select", "determinism"]) == 1
    out = capsys.readouterr().out
    assert "determinism/wall-clock" in out
    assert main(["lint", "--root", root, "--select", "determinism",
                 "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert main(["lint", "--root", root,
                 "--select", "stats-slots", "--ignore",
                 "stats-slots"]) == 0
    assert main(["lint", "--root", root,
                 "--select", "no-such-checker"]) == 2
    assert "unknown lint 'no-such-checker'" \
        in capsys.readouterr().err


def test_plugin_checkers_participate(tmp_path):
    from repro.lintkit import LINTS, Checker

    class NoTabsChecker(Checker):
        name = "no-tabs"
        summary = "fixture checker: no tab characters in sources"
        contract = "fixture"

        def run(self, ctx):
            findings = []
            for path in ctx.python_files("src/repro"):
                for number, line in enumerate(
                        ctx.read(path).splitlines(), 1):
                    if "\t" in line:
                        findings.append(self.finding(
                            path, number, "tab character",
                            code="tab"))
            return findings

    root = make_repo(tmp_path, {
        "src/repro/sim/tabby.py": "x = 1\ny =\t2\n",
    })
    LINTS.add("no-tabs", NoTabsChecker, tags=("plugin",))
    try:
        report = run_lint(root=root, select=["no-tabs"])
        assert codes_of(report) == ["tab"]
        # Unselected runs include the plugin checker too.
        assert "no-tabs" in run_lint(root=root,
                                     ignore=ALL_CHECKERS).checkers
    finally:
        LINTS.remove("no-tabs")


# ---------------------------------------------------------------------------
# the real tree
# ---------------------------------------------------------------------------


def test_clean_tree_smoke():
    """All checkers, real repository, shipped baseline: zero
    unsuppressed findings and no dead baseline entries."""
    report = run_lint(root=REPO_ROOT)
    assert report.checkers == ALL_CHECKERS
    assert report.clean, report.render_text()
    assert not report.unused_suppressions()
    # The shipped baseline documents exactly the reviewed exceptions.
    assert [f.fingerprint() for f in report.suppressed] == [
        "determinism:src/repro/exp/cache.py:time.time:wall-clock"]


def test_lint_registry_describes_contracts():
    from repro.registry import component_registry
    registry = component_registry("lints")  # plural alias
    assert set(ALL_CHECKERS) <= set(registry.names())
    for name in ALL_CHECKERS:
        info = registry.describe(name)
        assert info["metadata"]["contract"], name
        assert info["metadata"]["codes"], name


def test_purity_checker_walks_the_real_proof_family():
    """Guard against the family scan going vacuous: the known
    proof/probe surface of the simulator must be visited."""
    from repro.lintkit.astutil import class_methods, iter_classes
    from repro.lintkit.checkers.purity import ProofPurityChecker, \
        in_family
    ctx = LintContext(REPO_ROOT)
    seen = set()
    for subdir in ProofPurityChecker.scope:
        for path in ctx.python_files(subdir):
            tree = ctx.tree(path)
            for cls in iter_classes(tree):
                for fname in class_methods(cls):
                    if in_family(fname):
                        seen.add("%s.%s" % (cls.name, fname))
    assert {"Core.next_event_cycle", "SharedMemory.access_block_proof",
            "BaseHierarchy.load_block_proof",
            "BaseHierarchy._probe_stall_bumps",
            "StridePrefetcher.peek", "Minion.probe"} <= seen
