"""The component registry: spec strings, plugins, digest stability."""

import json

import pytest

from repro.defenses import DEFENSES, FIGURE_ORDER, registry
from repro.exp.spec import Sweep, resolve_defense, resolve_workload
from repro.registry import (
    SpecError,
    UnknownComponentError,
    component_registry,
    format_spec,
    normalize_spec,
    parse_spec,
)
from repro.registry import plugins
from repro.workloads.spec import WORKLOADS, get_workload

SCALE = 0.04


# ---------------------------------------------------------------------------
# spec-string grammar
# ---------------------------------------------------------------------------

def test_parse_bare_names():
    assert parse_spec("GhostMinion") == ("GhostMinion", {})
    assert parse_spec("MuonTrap-Flush") == ("MuonTrap-Flush", {})
    assert parse_spec("GhostMinion[All]") == ("GhostMinion[All]", {})
    assert parse_spec("  mcf  ") == ("mcf", {})


def test_parse_call_form_and_literals():
    name, kwargs = parse_spec(
        "pointer_chase(stride=128, footprint_kb=8192, branchy=False, "
        "name='x', weights=(1, 2))")
    assert name == "pointer_chase"
    assert kwargs == {"stride": 128, "footprint_kb": 8192,
                      "branchy": False, "name": "x", "weights": (1, 2)}
    # negative numbers are literals too
    assert parse_spec("k(x=-3)")[1] == {"x": -3}
    # Name() normalizes to the bare name
    assert parse_spec("Unsafe()") == ("Unsafe", {})


def test_format_spec_round_trip():
    for text in ("GhostMinion",
                 "MuonTrap(flush=True)",
                 "pointer_chase(footprint_kb=8192, stride=128)",
                 "k(s='a b', t=(1, 2), n=None)"):
        name, kwargs = parse_spec(text)
        normalized = format_spec(name, kwargs)
        assert parse_spec(normalized) == (name, kwargs)
        # normalization is a fixed point
        assert normalize_spec(normalized) == normalized


def test_normalize_sorts_keys():
    assert (normalize_spec("k(b=2,a=1)") == normalize_spec("k(a=1, b=2)")
            == "k(a=1, b=2)")


@pytest.mark.parametrize("bad", [
    "", "   ", "k(", "k)", "k(x=)", "k(1)", "k(x=1; y=2)",
    "k(x=1, x=2)",                       # duplicate keyword
    "k(x, y=1)",                         # positional argument
    "k(**d)",                            # ** expansion
    "k(x=foo)",                          # bare name value
    "k(x=os.path)",                      # attribute access
    "k(x=__import__('os'))",             # call in value
    "k(x=open('/etc/passwd'))",          # call in value
    "k(x=[i for i in range(9)])",        # comprehension
    "k(x=f'{1}')",                       # f-string
    "a+b", "k()(x=1)",
])
def test_injection_unsafe_and_bad_syntax_rejected(bad):
    with pytest.raises(SpecError):
        parse_spec(bad)


def test_unknown_kwargs_rejected_with_accepted_list():
    with pytest.raises(SpecError, match="flash"):
        resolve_defense("MuonTrap(flash=True)")
    with pytest.raises(SpecError, match="accepted"):
        resolve_workload("pointer_chase(strid=128)")
    # named workloads take no parameters at all
    with pytest.raises((SpecError, ValueError)):
        resolve_workload("mcf(stride=128)")


# ---------------------------------------------------------------------------
# lookup errors: did-you-mean + KeyError compatibility
# ---------------------------------------------------------------------------

def test_unknown_component_suggestions():
    with pytest.raises(UnknownComponentError) as excinfo:
        resolve_defense("GhostMinon")
    message = str(excinfo.value)
    assert "GhostMinion" in message and "did you mean" in message
    assert isinstance(excinfo.value, KeyError)
    with pytest.raises(KeyError, match="did you mean"):
        resolve_workload("hmmmer")
    with pytest.raises(KeyError):
        get_workload("doom")


def test_registry_compat_view():
    assert set(FIGURE_ORDER) <= set(registry)
    assert len(registry) == len(DEFENSES)
    for name in ["Unsafe"] + FIGURE_ORDER:
        assert registry[name]().name == name
    with pytest.raises(KeyError):
        registry["NotADefense"]


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        DEFENSES.add("Unsafe", lambda: None)


# ---------------------------------------------------------------------------
# construction semantics
# ---------------------------------------------------------------------------

def test_parameterized_defense_keeps_canonical_name():
    flush = resolve_defense("MuonTrap(flush=True)")
    assert flush.name == "MuonTrap-Flush"          # factory-chosen name
    assert flush.spec == "MuonTrap(flush=True)"
    assert flush.hierarchy_kwargs == {"flush_on_squash": True}
    plain = resolve_defense("MuonTrap-Flush")
    assert plain.spec is None                       # plain construction
    assert plain.hierarchy_kwargs == flush.hierarchy_kwargs


def test_parameterized_defense_gets_spec_display_name():
    d = resolve_defense("Custom(hierarchy='muontrap', "
                        "flush_on_squash=True)")
    assert d.name == "Custom(flush_on_squash=True, "\
                     "hierarchy='muontrap')"
    assert d.hierarchy_cls.__name__ == "MuonTrapHierarchy"


def test_synthetic_workload_named_after_spec():
    w = resolve_workload("pointer_chase(stride=128, footprint_kb=512)")
    assert w.name == "pointer_chase(footprint_kb=512, stride=128)"
    assert w.suite == "synthetic"
    assert w.params["nodes"] == 512 * 1024 // 128
    programs = w.build(0.05)
    assert len(programs) == 1 and len(programs[0].instrs) > 0


def test_synthetic_workload_spellings_share_digest():
    a = Sweep(workloads=["pointer_chase(stride=128, footprint_kb=512)"],
              defenses=["Unsafe"], scale=SCALE).points()[0]
    b = Sweep(workloads=["pointer_chase(footprint_kb=512,stride=128)"],
              defenses=["Unsafe"], scale=SCALE).points()[0]
    assert a.digest() == b.digest()


def test_workload_suite_tags():
    assert "mcf" in WORKLOADS.names(tag="spec2006")
    assert "canneal" in WORKLOADS.names(tag="parsec")
    assert set(WORKLOADS.names(tag="synthetic")) >= {
        "pointer_chase", "stream", "indirect", "random_access",
        "compute", "mixed"}


def test_describe_introspection():
    info = DEFENSES.describe("MuonTrap(flush=True)")
    assert info["kind"] == "defense"
    assert info["spec"] == "MuonTrap(flush=True)"
    assert any(row["name"] == "flush" for row in info["params"])
    # describing validates kwargs without constructing
    with pytest.raises(SpecError):
        DEFENSES.describe("MuonTrap(flash=True)")
    preds = component_registry("predictors")  # plural alias
    assert {"tournament", "bimodal"} <= set(preds.names())


# ---------------------------------------------------------------------------
# cache-digest stability across the registry migration
# ---------------------------------------------------------------------------

# The exact non-code cache token of hmmer::GhostMinion::base at scale
# 0.04, captured from the pre-registry engine (PR 2).  Any drift here
# orphans every accumulated on-disk cache entry.
GOLDEN_TOKEN_PR2 = (
    '{"config":{"core":{"commit_width":8,"fetch_width":8,"fp_alus":4,'
    '"int_alus":6,"iq_entries":64,"issue_width":8,"lq_entries":32,'
    '"mispredict_penalty":8,"muldiv_units":2,"predictor":{'
    '"btb_entries":4096,"choice_entries":8192,"global_entries":8192,'
    '"local_entries":2048,"ras_entries":16},"rob_entries":192,'
    '"sq_entries":32,"strict_fu_order":false},"cores":1,"dram":{'
    '"banks":8,"base_latency":80,"nonspec_open_only":false,'
    '"open_page":true,"row_bits":12,"row_hit_latency":40},'
    '"iprefetch_into_minion":false,"l1d":{"assoc":2,"latency":2,'
    '"line_bytes":64,"mshrs":4,"size_bytes":65536},"l1i":{"assoc":2,'
    '"latency":2,"line_bytes":64,"mshrs":4,"size_bytes":32768},"l2":{'
    '"assoc":8,"latency":20,"line_bytes":64,"mshrs":20,'
    '"size_bytes":2097152},"l2_mshr_partitioning":false,'
    '"l2_prefetcher":true,"minion_d":{"assoc":2,"async_reload":false,'
    '"line_bytes":64,"size_bytes":2048,"timeless":false},"minion_i":{'
    '"assoc":2,"async_reload":false,"line_bytes":64,'
    '"size_bytes":2048,"timeless":false},"model_tlb":false,'
    '"prefetcher_rpt_entries":64,"tlb":{"l1_assoc":4,"l1_entries":64,'
    '"l2_assoc":8,"l2_entries":1024,"l2_latency":8,"minion_assoc":2,'
    '"minion_entries":16,"page_bits":12,"walk_latency":40}},'
    '"defense":{"early_commit":false,"epoch_timestamps":false,'
    '"hierarchy":"repro.defenses.ghostminion.GhostMinionHierarchy",'
    '"hierarchy_kwargs":{"async_reload":null,"coherence_ext":true,'
    '"dminion":true,"iminion":true,"prefetch_ext":true,'
    '"timeless":false},"name":"GhostMinion","strict_fu_order":false,'
    '"taint_mode":"none","train_predictor_at_commit":true,'
    '"validation_mode":"none"},"max_cycles":5000000,"max_insts":null,'
    '"scale":0.04,"version":1,"workload":{"base_iters":1600,'
    '"kernel":"stream","name":"hmmer","params":{"footprint_lines":256,'
    '"stride_lines":1},"suite":"spec2006","threads":1}}')


def _token_sans_code(point):
    token = point.cache_token()
    del token["code"]                # folds in every source edit
    return json.dumps(token, sort_keys=True, separators=(",", ":"),
                      default=str)


def test_plain_name_token_byte_identical_to_pr2():
    point = Sweep(workloads=["hmmer"], defenses=["GhostMinion"],
                  scale=SCALE).points()[0]
    assert _token_sans_code(point) == GOLDEN_TOKEN_PR2


def test_plain_name_sweep_tokens_carry_no_spec_or_predictor_kind():
    points = Sweep(workloads=["hmmer", "mcf"],
                   defenses=["Unsafe"] + FIGURE_ORDER,
                   scale=SCALE).points()
    for point in points:
        token = point.cache_token()
        assert "spec" not in token["defense"], point.key
        assert "kind" not in token["config"]["core"]["predictor"], \
            point.key
        # Post-v1 engine policies default to off and are stripped at
        # their defaults — plain points keep their pre-checkpoint
        # digests (the golden token above pins the bytes).
        assert "warmup_insts" not in token, point.key
        assert "sampling" not in token, point.key


def test_policy_fields_enter_digest_only_when_set():
    from repro.exp.spec import RegionSampling
    base = Sweep(workloads=["hmmer"], defenses=["Unsafe"],
                 scale=SCALE).points()[0]
    warm = Sweep(workloads=["hmmer"], defenses=["Unsafe"], scale=SCALE,
                 max_insts=10_000, warmup_insts=5_000).points()[0]
    token = warm.cache_token()
    assert token["warmup_insts"] == 5_000
    assert "sampling" not in token
    assert warm.digest() != base.digest()
    sampled = Sweep(workloads=["hmmer"], defenses=["Unsafe"],
                    scale=SCALE, max_insts=10_000,
                    sampling=RegionSampling(
                        regions=4, window_insts=500)).points()[0]
    assert sampled.cache_token()["sampling"] == \
        {"regions": 4, "window_insts": 500}
    assert sampled.digest() != warm.digest()


def test_parameterized_spec_digests_differ_from_plain():
    plain = Sweep(workloads=["hmmer"], defenses=["MuonTrap-Flush"],
                  scale=SCALE).points()[0]
    spec = Sweep(workloads=["hmmer"], defenses=["MuonTrap(flush=True)"],
                 scale=SCALE).points()[0]
    assert spec.cache_token()["defense"]["spec"] == \
        "MuonTrap(flush=True)"
    assert plain.digest() != spec.digest()


def test_non_default_predictor_kind_enters_digest():
    from repro.exp.spec import ConfigVariant
    base = Sweep(workloads=["hmmer"], defenses=["Unsafe"],
                 scale=SCALE).points()[0]
    swapped = Sweep(workloads=["hmmer"], defenses=["Unsafe"],
                    scale=SCALE,
                    variants=[ConfigVariant.make(
                        "bimodal",
                        {"core.predictor.kind": "bimodal"})]).points()[0]
    token = swapped.cache_token()
    assert token["config"]["core"]["predictor"]["kind"] == "bimodal"
    assert base.digest() != swapped.digest()


# ---------------------------------------------------------------------------
# predictor swapping end-to-end
# ---------------------------------------------------------------------------

def test_predictor_kind_swaps_implementation():
    from repro.config import default_config
    from repro.sim.runner import run_workload
    cfg = default_config()
    cfg.core.predictor.kind = "bimodal"
    result = run_workload("hmmer", "Unsafe", scale=SCALE, cfg=cfg)
    assert result.finished
    default = run_workload("hmmer", "Unsafe", scale=SCALE)
    assert default.finished
    # both simulate the same instruction stream
    assert result.insts == default.insts


def test_unknown_predictor_kind_fails_loudly():
    from repro.config import PredictorConfig
    from repro.pipeline.branch_predictor import make_predictor
    from repro.analysis.stats import Stats
    cfg = PredictorConfig(kind="neural")
    with pytest.raises(UnknownComponentError, match="predictor"):
        make_predictor(cfg, Stats())


# ---------------------------------------------------------------------------
# plugins
# ---------------------------------------------------------------------------

PLUGIN_SOURCE = '''
from repro.registry import component_registry

DEFENSES = component_registry("defense")

@DEFENSES.register("PluginNop", tags=("plugin",))
def plugin_nop(strict=False):
    """A do-nothing plugin defense (test fixture)."""
    from repro.defenses.base import Defense
    return Defense(name="PluginNop", strict_fu_order=strict)
'''


@pytest.fixture
def plugin_file(tmp_path, monkeypatch):
    path = tmp_path / "my_plugin.py"
    path.write_text(PLUGIN_SOURCE)
    monkeypatch.setenv(plugins.ENV_PLUGINS, str(path))
    plugins.reset()
    yield path
    DEFENSES.remove("PluginNop")
    plugins.reset()


def test_plugin_loaded_on_registry_miss(plugin_file):
    defense = resolve_defense("PluginNop(strict=True)")
    assert defense.name == "PluginNop(strict=True)"
    assert defense.strict_fu_order
    assert str(plugin_file) in plugins.loaded_plugins()
    # enumerable once loaded
    assert "PluginNop" in DEFENSES.names(tag="plugin")


def test_plugin_listed_in_env_and_cwd_loads_once(plugin_file,
                                                 monkeypatch):
    # REPRO_PLUGINS pointing at the same file twice (or at the local
    # repro_plugins.py) must not execute it twice: re-registration
    # would raise.
    import os
    monkeypatch.setenv(plugins.ENV_PLUGINS, os.pathsep.join(
        [str(plugin_file), str(plugin_file)]))
    plugins.reset()
    assert plugins.load_plugins() == [str(plugin_file)]


def test_plugin_module_name_deterministic_across_processes(plugin_file):
    # Plugin-defined classes pickle by module reference; spawn-start
    # workers re-load plugins and must recreate the same module name
    # (hashlib-keyed, not per-process hash()-keyed).
    import os
    import subprocess
    import sys
    resolve_defense("PluginNop")  # load in this process
    code = ("import sys; from repro.registry import plugins; "
            "plugins.load_plugins(); "
            "print([m for m in sys.modules if "
            "m.startswith('repro_plugin_')][0])")
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        check=True, env=dict(os.environ, PYTHONPATH="src"))
    local = [m for m in sys.modules if m.startswith("repro_plugin_")]
    assert out.stdout.strip() in local


def test_broken_plugin_raises_plugin_error(tmp_path, monkeypatch):
    path = tmp_path / "broken.py"
    path.write_text("raise RuntimeError('boom')\n")
    monkeypatch.setenv(plugins.ENV_PLUGINS, str(path))
    plugins.reset()
    try:
        with pytest.raises(plugins.PluginError, match="boom"):
            plugins.load_plugins()
    finally:
        plugins.reset()


def test_engine_runs_plugin_defense(plugin_file, tmp_path):
    from repro.exp import run_sweep
    report = run_sweep(Sweep(workloads=["hmmer"],
                             defenses=["PluginNop"], scale=SCALE),
                       cache=str(tmp_path / "cache"))
    point = next(iter(report.results))
    assert point.defense == "PluginNop"
    assert point.cycles > 0
