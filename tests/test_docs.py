"""Docs hygiene rides the lint framework: one ``docs-sync`` family.

The relative-link/anchor walk and the architecture-page coverage rule
that used to live here (and the stall-taxonomy table assertions that
lived in tests/test_stall_taxonomy.py) are now the ``docs-sync``
checker (src/repro/lintkit/checkers/docs_sync.py); this test is the
thin clean-tree invocation CI's gating ``repro lint`` step also runs.
"""

import os

from repro.lintkit import run_lint

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir))


def test_docs_sync_lint_clean():
    report = run_lint(root=REPO_ROOT, select=["docs-sync"])
    assert report.clean, report.render_text()


def test_docs_sync_actually_scans_the_pages():
    """The checker walks the real docs surface (a docs/ move must not
    silently empty the scan)."""
    from repro.lintkit.base import LintContext
    pages = LintContext(REPO_ROOT).doc_files()
    assert "docs/architecture.md" in pages
    assert "docs/performance.md" in pages
    assert "docs/linting.md" in pages
    assert "ROADMAP.md" in pages and "CHANGES.md" in pages
