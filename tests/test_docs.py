"""Docs hygiene: relative links and anchors across the markdown pages.

Every ``[text](target)`` link in docs/*.md, ROADMAP.md and CHANGES.md
whose target is a relative path must point at an existing file, and a
``#fragment`` must match a heading (GitHub anchor rules) in the target
page.  CI runs this as its docs link-check step.
"""

import os
import re

import pytest

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir))

DOC_FILES = sorted(
    [os.path.join("docs", name)
     for name in os.listdir(os.path.join(REPO_ROOT, "docs"))
     if name.endswith(".md")]
    + ["ROADMAP.md", "CHANGES.md"])

#: [text](target) — excluding images and in-code backticked brackets.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _strip_code(text):
    """Drop fenced code blocks and neutralize inline code spans (links
    inside code samples are illustrative, not navigable).  Inline
    spans are *replaced*, not deleted: a link whose entire text is a
    code span (``[`file.py`](../file.py)``) must keep matching
    LINK_RE."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "code", text)


def _github_anchor(heading):
    """GitHub's heading -> anchor transformation."""
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def _anchors_of(path):
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return {_github_anchor(h) for h in HEADING_RE.findall(text)}


def _links_of(rel_path):
    with open(os.path.join(REPO_ROOT, rel_path), "r",
              encoding="utf-8") as handle:
        return LINK_RE.findall(_strip_code(handle.read()))


@pytest.mark.parametrize("rel_path", DOC_FILES)
def test_relative_links_resolve(rel_path):
    base_dir = os.path.dirname(os.path.join(REPO_ROOT, rel_path))
    problems = []
    for target in _links_of(rel_path):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            dest = os.path.normpath(os.path.join(base_dir, path_part))
        else:
            dest = os.path.join(REPO_ROOT, rel_path)  # same-page anchor
        if not os.path.exists(dest):
            problems.append("%s -> %s: missing file" % (rel_path, target))
            continue
        if fragment and dest.endswith(".md"):
            if fragment not in _anchors_of(dest):
                problems.append("%s -> %s: no such anchor"
                                % (rel_path, target))
    assert not problems, "\n".join(problems)


def test_docs_cover_every_page():
    """architecture.md is the map: it must link every other docs page,
    and every docs page must be reachable from it."""
    arch = os.path.join("docs", "architecture.md")
    assert arch in DOC_FILES, "docs/architecture.md is missing"
    linked = {os.path.basename(t.partition("#")[0])
              for t in _links_of(arch)}
    for rel_path in DOC_FILES:
        name = os.path.basename(rel_path)
        if name == "architecture.md" or not rel_path.startswith("docs"):
            continue
        assert name in linked, (
            "docs/architecture.md does not link %s" % name)
