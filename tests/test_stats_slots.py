"""Edge cases of the interned-slot Stats API (repro.analysis.stats).

The hot loop bumps counters through integer handles interned once at
component construction.  Three properties keep that safe across the
rest of the system:

- interning alone is invisible — a counter only enters ``as_dict()``
  once actually bumped, so pre-resolving handles for counters that
  never fire leaves result payloads (and cache digests) unchanged;
- handles stay valid across snapshot/restore — components hold their
  handles in attributes that checkpoint restore does *not* rebuild, so
  the slot numbering must come back exactly;
- slot allocation is deterministic — after a restore, re-interning
  reuses the same slots, keeping warm-started and cold runs aligned.
"""

from repro.analysis.stats import Stats


# -- invisibility of untouched slots ---------------------------------------


def test_interned_slot_is_invisible_until_bumped():
    stats = Stats()
    slot = stats.handle("quiet.counter")
    assert stats.as_dict() == {}
    assert list(stats.names()) == []
    assert "quiet.counter" not in stats
    assert stats.get("quiet.counter", default=-1.0) == -1.0
    assert stats.value(slot) == 0.0
    stats.add(slot)
    assert stats.as_dict() == {"quiet.counter": 1.0}
    assert "quiet.counter" in stats


def test_handle_is_stable_and_add_accumulates():
    stats = Stats()
    first = stats.handle("x")
    assert stats.handle("x") == first
    stats.add(first, 2)
    stats.add(first)
    assert stats.get("x") == 3.0
    assert stats.value(first) == 3.0


def test_set_and_bump_share_slots_with_handles():
    stats = Stats()
    slot = stats.handle("mixed")
    stats.bump("mixed", 4)
    stats.set("mixed", 10)
    assert stats.value(slot) == 10.0
    stats.add(slot, 1)
    assert stats.get("mixed") == 11.0


def test_merge_skips_interned_but_untouched_slots():
    source = Stats()
    source.handle("never.bumped")
    source.bump("real", 2)
    sink = Stats()
    sink.merge(source)
    assert sink.as_dict() == {"real": 2.0}


# -- snapshot/restore ------------------------------------------------------


def test_handles_survive_restore():
    """A handle held by a component keeps addressing the same counter
    after checkpoint restore (components are restored in place and
    never re-intern)."""
    stats = Stats()
    h_hits = stats.handle("c.hits")
    h_miss = stats.handle("c.misses")
    stats.add(h_hits, 5)
    state = stats.snapshot_state()
    stats.add(h_hits, 100)
    stats.add(h_miss, 7)
    stats.restore_state(state)
    assert stats.as_dict() == {"c.hits": 5.0}
    stats.add(h_hits)
    stats.add(h_miss, 2)
    assert stats.as_dict() == {"c.hits": 6.0, "c.misses": 2.0}


def test_restore_rolls_back_post_snapshot_interning():
    stats = Stats()
    stats.handle("old")
    state = stats.snapshot_state()
    late = stats.handle("late.arrival")
    stats.add(late, 3)
    stats.restore_state(state)
    assert "late.arrival" not in stats
    assert stats.as_dict() == {}


def test_slot_allocation_is_deterministic_after_restore():
    """Re-interning after a restore hands out the same slots the
    pre-restore timeline did — a warm-started run and the cold run it
    mirrors intern in the same construction order, so their handle
    numbering must match."""
    stats = Stats()
    stats.handle("a")
    state = stats.snapshot_state()
    before = [stats.handle("b"), stats.handle("c")]
    stats.restore_state(state)
    after = [stats.handle("b"), stats.handle("c")]
    assert after == before
    stats.add(after[1], 9)
    assert stats.as_dict() == {"c": 9.0}


def test_restored_snapshot_is_reusable():
    stats = Stats()
    slot = stats.handle("r")
    stats.add(slot, 1)
    state = stats.snapshot_state()
    stats.add(slot, 1)
    stats.restore_state(state)
    stats.add(slot, 1)
    stats.restore_state(state)
    assert stats.get("r") == 1.0


def test_untouched_interned_slot_stays_out_of_ratios():
    stats = Stats()
    stats.handle("sim.cycles")
    stats.handle("commit.insts")
    assert stats.ipc() == 0.0
    stats.bump("sim.cycles", 10)
    stats.bump("commit.insts", 5)
    assert stats.ipc() == 0.5
