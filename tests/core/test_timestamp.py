"""The 2x-ROB sliding-window timestamp encoding (§4.4, footnote 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.timestamp import TimestampWindow


def test_modulus_is_twice_rob():
    assert TimestampWindow(192).modulus == 384


def test_rejects_empty_rob():
    with pytest.raises(ValueError):
        TimestampWindow(0)


def test_encode_wraps():
    window = TimestampWindow(4)
    assert window.encode(0) == 0
    assert window.encode(8) == 0
    assert window.encode(9) == 1


def test_encode_rejects_negative():
    with pytest.raises(ValueError):
        TimestampWindow(4).encode(-1)


def test_simple_ordering():
    window = TimestampWindow(8)
    assert window.precedes_or_equal(3, 5)
    assert not window.precedes_or_equal(5, 3)
    assert window.precedes_or_equal(4, 4)


def test_ordering_across_wrap():
    window = TimestampWindow(4)  # modulus 8
    # seq 7 encodes to 7, seq 9 encodes to 1: 7 precedes 1 in-window.
    assert window.precedes_or_equal(window.encode(7), window.encode(9))
    assert not window.precedes_or_equal(window.encode(9), window.encode(7))


def test_read_and_overwrite_rules_are_duals():
    window = TimestampWindow(16)
    # fig. 4a: read allowed iff line at-or-before instruction
    assert window.may_read(inst_ts=10, line_ts=9)
    assert window.may_read(inst_ts=10, line_ts=10)
    assert not window.may_read(inst_ts=10, line_ts=11)
    # fig. 4b: overwrite allowed iff victim at-or-after instruction
    assert window.may_overwrite(inst_ts=10, line_ts=11)
    assert window.may_overwrite(inst_ts=10, line_ts=10)
    assert not window.may_overwrite(inst_ts=10, line_ts=9)


@given(st.integers(1, 512), st.integers(0, 10**6), st.integers(0, 10**6))
def test_window_agrees_with_monotone_when_in_flight(rob, seq_a, seq_b):
    """Footnote 5's claim: for any two instructions that can legally
    coexist in the ROB, the wrapped comparison equals the monotone one."""
    window = TimestampWindow(rob)
    if not window.in_flight_together(seq_a, seq_b):
        return
    wrapped = window.precedes_or_equal(
        window.encode(seq_a), window.encode(seq_b))
    assert wrapped == (seq_a <= seq_b)


@given(st.integers(1, 256), st.integers(0, 10**6))
def test_reflexive(rob, seq):
    window = TimestampWindow(rob)
    enc = window.encode(seq)
    assert window.precedes_or_equal(enc, enc)


@given(st.integers(1, 256), st.integers(0, 10**5), st.integers(0, 10**5))
def test_antisymmetric_strictly_within_window(rob, seq_a, seq_b):
    """For distinct timestamps strictly closer than the ROB depth,
    exactly one direction holds.  (At distance exactly N the footnote-5
    window is deliberately inclusive on both sides.)"""
    window = TimestampWindow(rob)
    if seq_a == seq_b or abs(seq_a - seq_b) >= rob:
        return
    enc_a, enc_b = window.encode(seq_a), window.encode(seq_b)
    assert window.precedes_or_equal(enc_a, enc_b) != \
        window.precedes_or_equal(enc_b, enc_a)


def test_distance():
    window = TimestampWindow(4)
    assert window.distance(6, 1) == 3  # wraps through 7, 0, 1
    assert window.distance(1, 6) == 5
