"""Executable Strictness/Temporal Order model (section 3)."""

from hypothesis import given, strategies as st

from repro.core.strictness import (
    InstDesc,
    consistent_commit_sets,
    may_influence_timing,
    seq_before,
    strictly_observes,
    temporal_implies_strict,
    temporally_succeeds,
    transmission_allowed,
)

insts = st.builds(InstDesc, thread=st.integers(0, 3),
                  seq=st.integers(0, 50), commits=st.booleans())


def _consistent_pair(x, y):
    return consistent_commit_sets([x, y])


# -- definition 1 -----------------------------------------------------------

def test_committed_transmits_to_anyone():
    src = InstDesc(0, 5, commits=True)
    for commits in (True, False):
        assert strictly_observes(src, InstDesc(0, 9, commits))


def test_transient_cannot_transmit_to_committed():
    """The security theorem's core step: x transient, y committed ->
    x S=> y must NOT hold."""
    transient = InstDesc(0, 9, commits=False)
    committed = InstDesc(0, 5, commits=True)
    assert not strictly_observes(transient, committed)


def test_transient_may_transmit_to_transient():
    a = InstDesc(0, 5, commits=False)
    b = InstDesc(0, 9, commits=False)
    assert strictly_observes(a, b)
    assert strictly_observes(b, a)


@given(insts)
def test_reflexive(x):
    assert strictly_observes(x, x)


@given(insts, insts, insts)
def test_transitive(x, y, z):
    if strictly_observes(x, y) and strictly_observes(y, z):
        assert strictly_observes(x, z)


@given(insts, insts)
def test_total_within_thread(x, y):
    """Section 3: within a thread either a S=> b or b S=> a (or both),
    given the pipeline's consistent commit sets."""
    if x.thread != y.thread or not _consistent_pair(x, y):
        return
    assert strictly_observes(x, y) or strictly_observes(y, x)


def test_no_cross_thread_order_for_speculative():
    """Between threads both directions may fail (section 3)."""
    a = InstDesc(0, 1, commits=False)
    b = InstDesc(1, 1, commits=True)
    assert not strictly_observes(a, b)
    assert strictly_observes(b, a)  # committed transmits anywhere


# -- definition 2 and the overapproximation theorem --------------------------

def test_temporal_older_in_sequence():
    older = InstDesc(0, 1, commits=False)
    newer = InstDesc(0, 2, commits=False)
    assert temporally_succeeds(older, newer)
    assert not temporally_succeeds(newer, older)


@given(insts, insts)
def test_temporal_implies_strict(x, y):
    if not _consistent_pair(x, y):
        return
    assert temporal_implies_strict(x, y)


@given(insts, insts)
def test_temporal_is_stricter(x, y):
    """Temporal Order permits a subset of Strictness Order's flows."""
    if not _consistent_pair(x, y):
        return
    if temporally_succeeds(x, y):
        assert strictly_observes(x, y)


def test_strict_flow_temporal_rejects():
    """The fig. 1 'blue' case Temporal Order loses: a younger committed
    instruction may strictly transmit to an older one, but Temporal
    Order rejects it unless the younger commits."""
    older = InstDesc(0, 1, commits=True)
    newer = InstDesc(0, 2, commits=False)
    # strictness: newer -> older is forbidden (newer doesn't commit)
    assert not strictly_observes(newer, older)
    # but older -> newer is fine under both
    assert strictly_observes(older, newer)
    assert temporally_succeeds(older, newer)


# -- helpers ------------------------------------------------------------------

def test_consistent_commit_sets_detects_violation():
    bad = [InstDesc(0, 1, commits=False), InstDesc(0, 2, commits=True)]
    assert not consistent_commit_sets(bad)
    good = [InstDesc(0, 1, commits=True), InstDesc(0, 2, commits=False)]
    assert consistent_commit_sets(good)


def test_seq_before_requires_same_thread():
    assert not seq_before(InstDesc(0, 1, True), InstDesc(1, 2, True))
    assert seq_before(InstDesc(0, 1, True), InstDesc(0, 2, True))


def test_unified_query_modes():
    older = InstDesc(0, 1, commits=False)
    newer = InstDesc(0, 2, commits=False)
    assert may_influence_timing(older, newer, temporal=True)
    assert may_influence_timing(older, newer, temporal=False)
    assert transmission_allowed(older, newer)
