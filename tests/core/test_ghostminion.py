"""The TimeGuarded Minion structure (figs. 3, 4; sections 4.3-4.4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ghostminion import Minion


def make(num_sets=4, assoc=2, timeless=False, rob=0):
    return Minion(num_sets, assoc, timeless=timeless, rob_entries=rob)


# -- TimeGuarded reads (fig. 4a) ---------------------------------------------

def test_read_miss():
    assert make().read(0x10, ts=5) == "miss"


def test_read_hit_older_line():
    minion = make()
    minion.fill(0x10, ts=3)
    assert minion.read(0x10, ts=5) == "hit"
    assert minion.read(0x10, ts=3) == "hit"  # equal timestamps allowed


def test_read_blocked_by_timeguard():
    """Fig. 4a: a line brought in by a younger instruction is invisible."""
    minion = make()
    minion.fill(0x10, ts=22)
    assert minion.read(0x10, ts=21) == "timeguard"
    assert minion.stats.get("minion.timeguard_blocks") == 1


# -- TimeGuarded fills (fig. 4b) ---------------------------------------------

def test_fill_takes_free_slot():
    outcome = make().fill(0x10, ts=7)
    assert outcome.filled and outcome.took_free_slot


def test_fill_evicts_younger_line():
    minion = make(num_sets=1, assoc=1)
    minion.fill(0x10, ts=9)
    outcome = minion.fill(0x11, ts=5)  # older fill may displace younger
    assert outcome.filled and outcome.evicted == 0x10


def test_fill_fails_against_older_line():
    """Fig. 4b: a younger fill may not displace an older line — only the
    highest-timestamped instruction learns the Minion is full."""
    minion = make(num_sets=1, assoc=1)
    minion.fill(0x10, ts=5)
    outcome = minion.fill(0x11, ts=9)
    assert not outcome.filled
    assert minion.get(0x10) is not None


def test_fill_evicts_highest_timestamp_candidate():
    """Footnote 4's policy: evict the highest-timestamped valid victim."""
    minion = make(num_sets=1, assoc=3)
    minion.fill(0x10, ts=5)
    minion.fill(0x11, ts=9)
    minion.fill(0x12, ts=7)
    outcome = minion.fill(0x13, ts=6)
    assert outcome.evicted == 0x11


def test_refill_same_line_lowers_timestamp():
    minion = make()
    minion.fill(0x10, ts=9)
    outcome = minion.fill(0x10, ts=4)
    assert outcome.filled
    assert minion.get(0x10).ts == 4


def test_refill_same_line_younger_fails():
    minion = make()
    minion.fill(0x10, ts=4)
    assert not minion.fill(0x10, ts=9).filled
    assert minion.get(0x10).ts == 4


# -- free-slotting at commit (fig. 3) ----------------------------------------

def test_commit_takes_line_and_frees_slot():
    minion = make(num_sets=1, assoc=1)
    minion.fill(0x10, ts=3)
    entry = minion.take_for_commit(0x10, ts=3)
    assert entry is not None and entry.line == 0x10
    assert len(minion) == 0
    # the freed slot accepts a new speculative fill
    assert minion.fill(0x11, ts=50).filled


def test_commit_cannot_take_younger_line():
    minion = make()
    minion.fill(0x10, ts=9)
    assert minion.take_for_commit(0x10, ts=5) is None
    assert minion.get(0x10) is not None


def test_commit_miss_returns_none():
    assert make().take_for_commit(0x99, ts=5) is None


# -- wipe on misspeculation (section 4.2) ------------------------------------

def test_wipe_is_timestamp_bounded():
    """Footnote 2: only lines above the squash point are cleared."""
    minion = make()
    minion.fill(0x10, ts=3)
    minion.fill(0x11, ts=7)
    minion.fill(0x12, ts=12)
    wiped = minion.wipe_above(7)
    assert wiped == 1
    assert sorted(entry.line for entry in minion.lines()) == [0x10, 0x11]


def test_timeless_wipe_clears_everything():
    minion = make(timeless=True)
    minion.fill(0x10, ts=3)
    minion.fill(0x11, ts=7)
    assert minion.wipe_above(100) == 2
    assert len(minion) == 0


def test_timeless_ignores_timeguard():
    """DMinion-Timeless (fig. 9): no backwards-in-time protection."""
    minion = make(timeless=True)
    minion.fill(0x10, ts=22)
    assert minion.read(0x10, ts=21) == "hit"


def test_timeless_fill_always_succeeds():
    minion = make(num_sets=1, assoc=1, timeless=True)
    minion.fill(0x10, ts=5)
    assert minion.fill(0x11, ts=9).filled


def test_invalidate():
    minion = make()
    minion.fill(0x10, ts=3)
    assert minion.invalidate(0x10)
    assert not minion.invalidate(0x10)


def test_contents_sorted():
    minion = make()
    minion.fill(0x12, ts=9)
    minion.fill(0x10, ts=3)
    assert minion.contents() == [(0x10, 3), (0x12, 9)]


def test_rejects_bad_geometry():
    with pytest.raises(ValueError):
        Minion(0, 2)
    with pytest.raises(ValueError):
        Minion(2, 0)


# -- property-based invariants -------------------------------------------------

ops = st.lists(
    st.tuples(st.sampled_from(["fill", "read", "commit", "wipe"]),
              st.integers(0, 15),      # line
              st.integers(0, 40)),     # ts
    max_size=60)


@settings(max_examples=200, deadline=None)
@given(ops)
def test_timeguard_invariants_hold_under_any_sequence(sequence):
    """Under any operation sequence:

    * a read at ts t never observes a line with ts > t;
    * a fill never displaces a line strictly older than itself;
    * after wipe_above(t), no line with ts > t remains.
    """
    minion = make(num_sets=2, assoc=2, rob=32)
    for op, line, ts in sequence:
        before = {e.line: e.ts for e in minion.lines()}
        if op == "fill":
            outcome = minion.fill(line, ts)
            if outcome.evicted is not None:
                assert before[outcome.evicted] >= ts
        elif op == "read":
            result = minion.read(line, ts)
            if result == "hit":
                assert before[line] <= ts
            elif result == "timeguard":
                assert before[line] > ts
        elif op == "commit":
            entry = minion.take_for_commit(line, ts)
            if entry is not None:
                assert entry.ts <= ts
        else:
            minion.wipe_above(ts)
            assert all(e.ts <= ts for e in minion.lines())
