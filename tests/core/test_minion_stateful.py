"""Model-based (stateful) testing of the Minion against a reference
dictionary model.

The model is the paper's specification: a map ``line -> ts`` where reads
see only at-or-older timestamps, fills only displace at-or-younger
lines, commits remove, and wipes clear everything above a bound.  Any
divergence between the Minion and the model over arbitrary operation
interleavings is a bug in either the structure or our reading of the
paper.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.ghostminion import Minion

NUM_SETS = 2
ASSOC = 2

lines = st.integers(0, 9)
stamps = st.integers(0, 50)


class MinionModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.minion = Minion(NUM_SETS, ASSOC)
        self.model = {}          # line -> ts

    def _set_of(self, line):
        return {l: t for l, t in self.model.items()
                if l % NUM_SETS == line % NUM_SETS}

    @rule(line=lines, ts=stamps)
    def fill(self, line, ts):
        outcome = self.minion.fill(line, ts)
        current = self._set_of(line)
        if line in self.model:
            expected = self.model[line] >= ts
            assert outcome.filled == expected
            if expected:
                self.model[line] = min(self.model[line], ts)
        elif len(current) < ASSOC:
            assert outcome.filled and outcome.took_free_slot
            self.model[line] = ts
        else:
            candidates = {l: t for l, t in current.items() if t >= ts}
            if candidates:
                victim = max(candidates, key=lambda l: candidates[l])
                assert outcome.filled and outcome.evicted == victim
                del self.model[victim]
                self.model[line] = ts
            else:
                assert not outcome.filled

    @rule(line=lines, ts=stamps)
    def read(self, line, ts):
        result = self.minion.read(line, ts)
        if line not in self.model:
            assert result == "miss"
        elif self.model[line] <= ts:
            assert result == "hit"
        else:
            assert result == "timeguard"

    @rule(line=lines, ts=stamps)
    def commit(self, line, ts):
        entry = self.minion.take_for_commit(line, ts)
        if line in self.model and self.model[line] <= ts:
            assert entry is not None and entry.line == line
            del self.model[line]
        else:
            assert entry is None

    @rule(ts=stamps)
    def wipe(self, ts):
        wiped = self.minion.wipe_above(ts)
        doomed = [l for l, t in self.model.items() if t > ts]
        assert wiped == len(doomed)
        for line in doomed:
            del self.model[line]

    @rule(line=lines)
    def invalidate(self, line):
        present = line in self.model
        assert self.minion.invalidate(line) == present
        self.model.pop(line, None)

    @invariant()
    def contents_match(self):
        assert self.minion.contents() == sorted(self.model.items())


MinionModel.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None)
TestMinionModel = MinionModel.TestCase
