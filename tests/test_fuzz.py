"""Differential config fuzzer (src/repro/fuzz, docs/fuzzing.md)."""

import dataclasses
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import fuzz
from repro.cli import main
from repro.defenses import DEFENSES
from repro.exp.engine import run_points
from repro.fuzz.grammar import BOUNDS, FuzzPoint, RegistryChoice
from repro.registry import (component_kinds, component_registry,
                            format_spec, normalize_spec, parse_spec)
from repro.sim.simulator import dense_loop_forced

#: Every registered component name across every kind — the population
#: the round-trip property quantifies over (brackets included:
#: GhostMinion[DMinion] must survive the grammar).
ALL_COMPONENT_NAMES = sorted({
    name for kind in component_kinds()
    for name in component_registry(kind).names()})

SPEC_KEYS = st.from_regex(r"[a-z_][a-z0-9_]{0,10}", fullmatch=True)
SPEC_VALUES = st.one_of(
    st.booleans(),
    st.none(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)


# -- satellite: property-based spec-grammar round trips -------------------

@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data(),
       kwargs=st.dictionaries(SPEC_KEYS, SPEC_VALUES, max_size=4))
def test_spec_roundtrip_is_fixed_point(data, kwargs):
    name = data.draw(st.sampled_from(ALL_COMPONENT_NAMES))
    spec = format_spec(name, kwargs)
    parsed_name, parsed_kwargs = parse_spec(spec)
    assert parsed_name == name
    assert parsed_kwargs == kwargs
    # parse(render(parse(s))) fixed point
    assert parse_spec(format_spec(parsed_name, parsed_kwargs)) \
        == (name, kwargs)
    # normalization idempotent
    normalized = normalize_spec(spec)
    assert normalize_spec(normalized) == normalized


def test_normalize_sorts_kwargs_to_one_canonical_form():
    a = normalize_spec("pointer_chase(stride=128, iters=60)")
    b = normalize_spec("pointer_chase(iters=60, stride=128)")
    assert a == b


# -- generator: determinism, validity, coverage ---------------------------

def test_generate_is_deterministic():
    first = fuzz.generate(42, 25)
    second = fuzz.generate(42, 25)
    assert first == second
    assert len(first) == 25
    # different seeds draw different campaigns
    assert fuzz.generate(43, 25) != first


def test_generated_points_are_valid_and_labelled():
    for point in fuzz.generate(7, 12, budget=900):
        sweep_point = point.build()  # raises on invalid points
        assert sweep_point.max_insts == 900
        assert point.label.startswith("fuzz-7-")
        assert len(point.overrides) <= 3


def test_every_defense_family_covered_in_100_draws():
    points = fuzz.generate(42, 100)
    drawn = {parse_spec(point.defense)[0] for point in points}
    assert drawn >= set(DEFENSES.names())


def test_fuzz_point_dict_round_trip():
    point = fuzz.generate(3, 2)[1]
    assert FuzzPoint.from_dict(
        json.loads(json.dumps(point.as_dict()))) == point


def test_bounds_table_values_all_validate():
    fuzz.check_bounds_table()  # raises on a stale path or bad menu
    kinds = [v for v in BOUNDS.values()
             if isinstance(v, RegistryChoice)]
    assert any(choice.kind == "predictor" for choice in kinds)
    assert "tournament" in RegistryChoice("predictor").values()


# -- oracles --------------------------------------------------------------

def _tiny_point(**over):
    base = dict(seed=1, index=0, workload="stream(iters=60)",
                defense="GhostMinion", budget=800)
    base.update(over)
    return FuzzPoint(**base)


def test_regs_digest_populated_and_stable():
    sweep_point = _tiny_point().build()
    first = run_points([sweep_point], jobs=1, cache=False)
    second = run_points([dataclasses.replace(sweep_point)],
                        jobs=1, cache=False)
    a = first.results.get(sweep_point.key)
    b = second.results.get(sweep_point.key)
    assert a.regs_digest is not None
    assert a.regs_digest == b.regs_digest
    # runtime metadata: never part of the canonical JSON
    assert "regs_digest" not in a.to_json_dict()


def test_dense_event_oracle_passes_on_healthy_point():
    oracle = fuzz.resolve_oracle("dense-event", jobs=1)
    verdicts = oracle.check([_tiny_point()])
    assert [v.ok for v in verdicts] == [True]
    assert verdicts[0].oracle == "dense-event"


def test_checkpoint_oracle_passes_on_healthy_point():
    oracle = fuzz.resolve_oracle("checkpoint", jobs=1)
    verdicts = oracle.check([_tiny_point()])
    assert [v.ok for v in verdicts] == [True]


def test_unknown_oracle_has_suggestions():
    from repro.registry import UnknownComponentError
    with pytest.raises(UnknownComponentError) as excinfo:
        fuzz.resolve_oracle("dense-evnt")
    assert "dense-event" in str(excinfo.value)


# -- seeded divergence: catch, shrink, reproduce, replay ------------------

def _broken_dense_factory():
    """Test-only defense whose behaviour depends on the scheduler
    environment: GhostMinion under the dense loop, Unsafe under the
    event scheduler — a guaranteed dense-event divergence."""
    name = "GhostMinion" if dense_loop_forced() else "Unsafe"
    defense = DEFENSES.create(name)
    defense.name = "BrokenDense"
    return defense


@pytest.fixture
def broken_dense():
    DEFENSES.add("BrokenDense", _broken_dense_factory, tags=("test",),
                 summary="test-only: diverges across schedulers")
    yield "BrokenDense"
    DEFENSES.remove("BrokenDense")


def test_broken_component_caught_shrunk_and_replayed(
        broken_dense, tmp_path):
    oracle = fuzz.resolve_oracle("dense-event", jobs=1)
    # A deliberately noisy point: the divergence is in the defense, so
    # shrinking must strip the overrides and workload decoration.
    point = FuzzPoint(
        seed=9, index=0,
        workload="pointer_chase(branchy=False, iters=60)",
        defense=broken_dense,
        overrides=(("core.rob_entries", 96), ("l1d.mshrs", 2)),
        budget=900)
    verdicts = oracle.check([point])
    assert not verdicts[0].ok
    assert verdicts[0].mismatch  # field-level diff names the culprit

    minimal = fuzz.shrink(point, oracle)
    assert len(minimal.overrides) <= 3
    assert minimal.overrides == ()        # all overrides were noise
    assert parse_spec(minimal.defense)[0] == broken_dense
    assert parse_spec(minimal.workload)[1] == {}

    path = fuzz.write_reproducer(minimal, "dense-event",
                                 str(tmp_path),
                                 detail=verdicts[0].detail)
    replayed = fuzz.replay_reproducer(path, jobs=1)
    assert not replayed.ok
    assert replayed.point == minimal
    # the CLI replay path agrees and exits nonzero
    assert main(["fuzz", "--repro", path, "--jobs", "1"]) == 1


def test_campaign_writes_reproducer_for_divergence(
        broken_dense, tmp_path, capsys):
    corpus = tmp_path / "corpus"
    report = fuzz.run_campaign(
        seed=5, count=0, oracle_names=("dense-event",), budget=900,
        jobs=1, corpus_dir=str(corpus))
    assert report.ok and report.reproducers == []

    oracle = fuzz.resolve_oracle("dense-event", jobs=1)
    point = FuzzPoint(seed=5, index=0, workload="stream(iters=60)",
                      defense=broken_dense, budget=900)
    verdict = oracle.check([point])[0]
    assert not verdict.ok
    path = fuzz.write_reproducer(point, "dense-event", str(corpus))
    assert (corpus / path.split("/")[-1]).exists()
    reloaded_point, oracle_name = fuzz.load_reproducer(path)
    assert reloaded_point == point and oracle_name == "dense-event"


# -- CLI ------------------------------------------------------------------

def test_cli_fuzz_json_deterministic(tmp_path, capsys):
    argv = ["fuzz", "--seed", "42", "--count", "2", "--budget", "700",
            "--jobs", "1", "--json", "--corpus", str(tmp_path)]
    assert main(argv) == 0
    first = json.loads(capsys.readouterr().out)
    assert main(argv) == 0
    second = json.loads(capsys.readouterr().out)
    assert first == second
    assert first["ok"] is True
    assert first["passed"] == 2 and first["failed"] == 0


def test_cli_fuzz_unknown_oracle_suggests(capsys):
    assert main(["fuzz", "--oracle", "dense-evnt"]) == 2
    assert "dense-event" in capsys.readouterr().err


def test_cli_fuzz_repro_conflicts_with_generation_flags(capsys):
    assert main(["fuzz", "--repro", "x.json", "--seed", "1"]) == 2
    assert "--seed" in capsys.readouterr().err
    assert main(["fuzz", "--repro", "x.json", "--count", "5"]) == 2
    assert "--count" in capsys.readouterr().err


def test_cli_fuzz_unreadable_reproducer(tmp_path, capsys):
    missing = str(tmp_path / "nope.json")
    assert main(["fuzz", "--repro", missing]) == 2
    assert "error:" in capsys.readouterr().err
