"""Workload suites: every figure benchmark builds and terminates."""

import pytest

from repro.pipeline.interpreter import run_program
from repro.workloads.spec import (
    PARSEC,
    SPEC2006,
    SPEC2017,
    get_workload,
)

ALL = SPEC2006 + SPEC2017 + PARSEC


def test_suite_sizes_match_figures():
    assert len(SPEC2006) == 25    # fig. 6
    assert len(SPEC2017) == 18    # fig. 8
    assert len(PARSEC) == 7       # fig. 7


def test_names_unique():
    names = [spec.name for spec in ALL]
    assert len(names) == len(set(names))


def test_figure6_headline_workloads_present():
    for name in ("mcf", "libquantum", "xalancbmk", "gamess", "soplex",
                 "lbm", "astar", "omnetpp", "zeusmp"):
        assert get_workload(name).suite == "spec2006"


def test_parsec_is_four_threaded():
    for spec in PARSEC:
        assert spec.threads == 4


def test_get_workload_unknown():
    with pytest.raises(KeyError):
        get_workload("doom")


@pytest.mark.parametrize("spec", ALL, ids=lambda s: s.name)
def test_workload_terminates_functionally(spec):
    """Every benchmark program halts and commits work (tiny scale)."""
    programs = spec.build(scale=0.02)
    assert len(programs) == spec.threads
    for program in programs:
        state = run_program(program, max_steps=300_000)
        assert state.halted, spec.name
        assert state.committed > 50


def test_scale_controls_iterations():
    small = get_workload("hmmer").build(scale=0.05)[0]
    large = get_workload("hmmer").build(scale=0.2)[0]
    s_small = run_program(small, max_steps=1_000_000)
    s_large = run_program(large, max_steps=1_000_000)
    assert s_large.committed > 2 * s_small.committed


def test_threads_get_distinct_seeds():
    programs = get_workload("canneal").build(scale=0.05)
    images = [tuple(sorted(p.memory.items())) for p in programs]
    assert len(set(images)) > 1
