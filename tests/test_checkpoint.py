"""Checkpoint subsystem: component snapshots, blobs, store, policies.

Four layers, bottom up:

- :mod:`repro.snapshot` — the per-component ``SnapshotMixin`` contract
  (state captured, wiring excluded, nested components restored in
  place);
- :mod:`repro.sim.checkpoint` — whole-machine blob round trips and the
  refusal cases (corrupt, wrong format, wrong source tree);
- the ``checkpoints`` table in :class:`repro.store.ResultStore` —
  save/lookup/first-write-wins/stats/prune;
- the engine policies — ``warmup_insts`` warm-start and
  ``sampling`` region sampling, both byte-identical to cold runs
  (the full defense matrix lives in ``test_scheduler_equivalence.py``).
"""

import os

import pytest

from repro.defenses import registry
from repro.exp.engine import (
    ENV_CHECKPOINT_DB,
    resolve_checkpoints,
    run_points,
)
from repro.exp.spec import RegionSampling, SweepPoint, resolve_workload
from repro.sim.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    restore_simulator,
)
from repro.sim.simulator import Simulator
from repro.snapshot import SnapshotMixin
from repro.store.db import ResultStore, RunMeta, StoreCache
from repro.workloads.spec import get_workload


# -- SnapshotMixin: per-component state round trips ------------------------


def test_stats_snapshot_round_trip():
    from repro.analysis.stats import Stats
    stats = Stats()
    stats.bump("a.hits", 3)
    stats.set("b.level", 7.5)
    state = stats.snapshot_state()
    stats.bump("a.hits")
    stats.set("c.new", 1)
    stats.restore_state(state)
    assert stats.as_dict() == {"a.hits": 3, "b.level": 7.5}


def test_cache_snapshot_round_trip_preserves_wiring():
    from repro.analysis.stats import Stats
    from repro.memory.cache import SetAssocCache
    stats = Stats()
    cache = SetAssocCache(num_sets=4, assoc=2, name="l1", stats=stats)
    cache.fill(3, cycle=1)
    cache.fill(7, cycle=2)
    state = cache.snapshot_state()
    cache.fill(11, cycle=3)
    cache.fill(15, cycle=4)
    cache.restore_state(state)
    assert sorted(cache.lines()) == [3, 7]
    # Excluded wiring is untouched: the same Stats object, with the
    # post-snapshot counters still in it (component snapshots capture
    # component state, not the shared stats sink).
    assert cache.stats is stats


def test_prefetcher_snapshot_round_trip():
    from repro.memory.prefetcher import StridePrefetcher
    pf = StridePrefetcher(entries=8, degree=1)
    for line in (10, 12, 14):  # establish a stride-2 pattern
        pf.train(pc=0x40, line=line)
    state = pf.snapshot_state()
    reference = pf.train(pc=0x40, line=16)
    pf.restore_state(state)
    assert pf.train(pc=0x40, line=16) == reference


def test_predictor_snapshot_round_trip():
    from repro.pipeline.branch_predictor import TournamentPredictor
    bp = TournamentPredictor()
    for _ in range(6):
        taken, ghr = bp.predict(0x100)
        bp.update(0x100, True, ghr)
    state = bp.snapshot_state()
    reference = bp.predict(0x100)
    taken, ghr = bp.predict(0x100)
    bp.update(0x100, False, ghr)
    bp.update(0x100, False, ghr)
    bp.restore_state(state)
    assert bp.predict(0x100) == reference


def test_nested_components_restore_in_place():
    """A nested SnapshotMixin field keeps its object identity across
    restore — sub-component wiring (stats handles, back references held
    by third parties) must survive."""

    class Leaf(SnapshotMixin):
        def __init__(self):
            self.value = 0

    class Node(SnapshotMixin):
        _SNAPSHOT_EXCLUDE = ("wiring",)

        def __init__(self):
            self.leaf = Leaf()
            self.items = [1, 2]
            self.wiring = object()

    node = Node()
    leaf, wiring = node.leaf, node.wiring
    node.leaf.value = 5
    state = node.snapshot_state()
    node.leaf.value = 99
    node.items.append(3)
    node.wiring = object()
    node.restore_state(state)
    assert node.leaf is leaf, "nested component must restore in place"
    assert node.leaf.value == 5
    assert node.items == [1, 2]
    assert node.wiring is not wiring, "excluded wiring is not restored"


def test_snapshot_state_is_isolated_from_later_mutation():
    class Holder(SnapshotMixin):
        def __init__(self):
            self.data = {"k": [1]}

    holder = Holder()
    state = holder.snapshot_state()
    holder.data["k"].append(2)
    holder.restore_state(state)
    assert holder.data == {"k": [1]}


# -- whole-machine blobs ---------------------------------------------------


def _mid_run_sim():
    programs = get_workload("mcf").build(0.04)
    sim = Simulator(programs, registry["Unsafe"]())
    sim.run(max_insts=200)
    return sim


def test_simulator_blob_round_trip():
    sim = _mid_run_sim()
    blob = sim.snapshot()
    restored = Simulator.restore(blob)
    assert restored is not sim
    assert restored.cycle == sim.cycle
    assert restored.committed_insts() == sim.committed_insts()
    assert restored.stats.as_dict() == sim.stats.as_dict()


def test_restore_rejects_garbage():
    with pytest.raises(CheckpointError):
        Simulator.restore(b"not a checkpoint")


def test_restore_rejects_unknown_format():
    import pickle
    import zlib
    blob = zlib.compress(pickle.dumps({"format": CHECKPOINT_FORMAT + 1,
                                       "code": "x", "sim": None}))
    with pytest.raises(CheckpointError, match="format"):
        restore_simulator(blob)


def test_restore_rejects_foreign_source_tree():
    import pickle
    import zlib
    sim = _mid_run_sim()
    payload = pickle.loads(zlib.decompress(sim.snapshot()))
    payload["code"] = "0" * len(payload["code"])
    tampered = zlib.compress(pickle.dumps(payload))
    with pytest.raises(CheckpointError, match="source tree"):
        restore_simulator(tampered)
    # The store path keys blobs by a digest that already covers the
    # fingerprint, so it may skip the redundant header check.
    restored = restore_simulator(tampered, check_code=False)
    assert restored.cycle == sim.cycle


def test_restore_rejects_blob_without_simulator():
    import pickle
    import zlib
    blob = zlib.compress(pickle.dumps({"format": CHECKPOINT_FORMAT,
                                       "code": "x", "sim": "nope"}))
    with pytest.raises(CheckpointError, match="no simulator"):
        restore_simulator(blob, check_code=False)


# -- the checkpoints table -------------------------------------------------


def _store(tmp_path, name="ck.sqlite"):
    return ResultStore(str(tmp_path / name),
                       run_meta=RunMeta(host="t", repro_version="0",
                                        recorded_at=1000.0))


def test_checkpoint_save_lookup_round_trip(tmp_path):
    store = _store(tmp_path)
    assert store.checkpoint_save("p1", 500, b"blob-bytes",
                                 fmt=CHECKPOINT_FORMAT, insts=502,
                                 cycles=9000, workload="mcf",
                                 defense="Unsafe")
    record = store.checkpoint_lookup("p1", 500)
    assert record.blob == b"blob-bytes"
    assert (record.prefix_digest, record.inst_count) == ("p1", 500)
    assert (record.format, record.insts, record.cycles) == \
        (CHECKPOINT_FORMAT, 502, 9000)
    assert store.checkpoint_lookup("p1", 501) is None
    assert store.checkpoint_lookup("p2", 500) is None


def test_checkpoint_first_write_wins(tmp_path):
    store = _store(tmp_path)
    assert store.checkpoint_save("p1", 500, b"first",
                                 fmt=CHECKPOINT_FORMAT, insts=500,
                                 cycles=1)
    assert not store.checkpoint_save("p1", 500, b"second",
                                     fmt=CHECKPOINT_FORMAT, insts=500,
                                     cycles=1)
    assert store.checkpoint_lookup("p1", 500).blob == b"first"


def test_checkpoint_stats_and_counts(tmp_path):
    store = _store(tmp_path)
    store.checkpoint_save("p1", 100, b"aa", fmt=1, insts=100, cycles=1)
    store.checkpoint_save("p1", 200, b"bbbb", fmt=1, insts=200,
                          cycles=2)
    store.checkpoint_save("p2", 100, b"c", fmt=1, insts=100, cycles=1)
    assert store.checkpoint_counts("p1") == [100, 200]
    stats = store.checkpoint_stats()
    assert stats["checkpoints"] == 3
    assert stats["checkpoint_bytes"] == 7
    assert stats["checkpoint_prefixes"] == 2
    # And the combined stats() view folds the same numbers in.
    assert store.stats()["checkpoints"] == 3


def test_checkpoint_prune_filters(tmp_path):
    store = _store(tmp_path)
    store.checkpoint_save(
        "aaa", 100, b"x", fmt=1, insts=100, cycles=1,
        run_meta=RunMeta(recorded_at=100.0))
    store.checkpoint_save(
        "bbb", 100, b"y", fmt=1, insts=100, cycles=1,
        run_meta=RunMeta(recorded_at=900.0))
    with pytest.raises(ValueError):
        store.checkpoint_prune()
    assert store.checkpoint_prune(older_than=500.0) == 1
    assert store.checkpoint_lookup("bbb", 100) is not None
    assert store.checkpoint_prune(prefix="bb") == 1
    assert store.checkpoint_stats()["checkpoints"] == 0
    store.checkpoint_save("ccc", 1, b"z", fmt=1, insts=1, cycles=1)
    assert store.checkpoint_prune(all_rows=True) == 1


def test_checkpoint_prune_sanitizes_like_wildcards(tmp_path):
    store = _store(tmp_path)
    store.checkpoint_save("abc", 1, b"x", fmt=1, insts=1, cycles=1)
    # A hostile/typo'd "%" must not turn a prefix prune into --all.
    assert store.checkpoint_prune(prefix="%") == 0
    assert store.checkpoint_prune(prefix="_b") == 0
    assert store.checkpoint_stats()["checkpoints"] == 1


# -- prefix digests --------------------------------------------------------


def _point(**kwargs):
    defaults = dict(workload=resolve_workload("mcf"),
                    defense=registry["Unsafe"](), scale=1.0,
                    max_insts=2000)
    defaults.update(kwargs)
    return SweepPoint(**defaults)


def test_prefix_digest_ignores_horizon_and_policy():
    base = _point().prefix_digest()
    assert _point(max_insts=5000).prefix_digest() == base
    assert _point(max_cycles=123456).prefix_digest() == base
    assert _point(warmup_insts=500).prefix_digest() == base
    sampled = _point(warmup_insts=None,
                     sampling=RegionSampling(regions=4,
                                             window_insts=100))
    assert sampled.prefix_digest() == base


def test_prefix_digest_covers_execution_inputs():
    base = _point().prefix_digest()
    assert _point(defense=registry["GhostMinion"]()).prefix_digest() \
        != base
    assert _point(scale=0.5).prefix_digest() != base
    assert _point(workload=resolve_workload("hmmer")).prefix_digest() \
        != base


def test_cache_digest_forks_on_policy():
    """Policies shape the *result* (sampling) or assert an intent
    (warmup), so they are part of the result identity — unlike the
    prefix identity above."""
    base = _point().digest()
    assert _point(warmup_insts=500).digest() != base
    assert _point(sampling=RegionSampling(regions=4,
                                          window_insts=100)).digest() \
        != base


# -- engine policies -------------------------------------------------------


def test_resolve_checkpoints_policy(tmp_path, monkeypatch):
    monkeypatch.delenv(ENV_CHECKPOINT_DB, raising=False)
    assert resolve_checkpoints(None) is None
    assert resolve_checkpoints(False) is None
    assert resolve_checkpoints("x.sqlite") == "x.sqlite"
    with pytest.raises(ValueError):
        resolve_checkpoints(True)
    monkeypatch.setenv(ENV_CHECKPOINT_DB, "env.sqlite")
    assert resolve_checkpoints(None) == "env.sqlite"
    assert resolve_checkpoints(True) == "env.sqlite"
    assert resolve_checkpoints(False) is None
    monkeypatch.delenv(ENV_CHECKPOINT_DB)
    store = _store(tmp_path)
    assert resolve_checkpoints(None, cache=store) == store.path
    assert resolve_checkpoints(
        None, cache=StoreCache(store)) == store.path


def test_warm_start_matches_cold_and_reports_telemetry(tmp_path):
    ck = str(tmp_path / "ck.sqlite")
    cold = run_points([_point()], cache=False).results
    warm_point = _point(warmup_insts=1500)
    creating = run_points([warm_point], cache=False, checkpoints=ck)
    restoring = run_points([warm_point], cache=False, checkpoints=ck)
    made, restored = (next(iter(creating.results)),
                      next(iter(restoring.results)))
    reference = next(iter(cold))
    # Byte-identical simulation outcome on all three paths.
    for result in (made, restored):
        assert result.cycles == reference.cycles
        assert result.insts == reference.insts
        assert result.stats == reference.stats
    # Telemetry: the creating run simulated everything, the restoring
    # run skipped the warm-up prefix.
    assert made.warm_insts == 0
    assert restored.warm_insts >= 1500
    assert creating.warm_insts() == 0
    assert restoring.warm_insts() >= 1500
    assert "warm-start avoided" in restoring.timing_summary()
    assert ResultStore(ck).checkpoint_stats()["checkpoints"] == 1


def test_warm_start_without_database_still_matches_cold():
    cold = next(iter(run_points([_point()], cache=False).results))
    warm = next(iter(run_points([_point(warmup_insts=1500)],
                                cache=False).results))
    assert (warm.cycles, warm.insts, warm.stats) == \
        (cold.cycles, cold.insts, cold.stats)
    assert warm.warm_insts == 0


def test_warm_start_shares_checkpoints_across_horizons(tmp_path):
    """Points differing only in max_insts share the warm-up prefix —
    the second horizon restores the first's checkpoint."""
    ck = str(tmp_path / "ck.sqlite")
    run_points([_point(max_insts=1800, warmup_insts=1500)],
               cache=False, checkpoints=ck)
    report = run_points([_point(max_insts=2000, warmup_insts=1500)],
                        cache=False, checkpoints=ck)
    assert report.warm_insts() >= 1500
    assert ResultStore(ck).checkpoint_stats()["checkpoints"] == 1


def test_warm_start_is_not_saved_past_program_end(tmp_path):
    """A warm-up that the program finishes before is a complete run,
    not a prefix: nothing is stored, results still match cold."""
    ck = str(tmp_path / "ck.sqlite")
    point = _point(max_insts=None, warmup_insts=10**9)
    report = run_points([point], cache=False, checkpoints=ck)
    result = next(iter(report.results))
    assert result.finished
    assert ResultStore(ck).checkpoint_stats()["checkpoints"] == 0


def test_sampling_generator_and_restore_passes_agree(tmp_path):
    ck = str(tmp_path / "ck.sqlite")
    point = _point(sampling=RegionSampling(regions=4,
                                           window_insts=300))
    generator = run_points([point], cache=False, checkpoints=ck)
    restore = run_points([point], cache=False, checkpoints=ck)
    first = next(iter(generator.results))
    second = next(iter(restore.results))
    assert first.to_json_dict() == second.to_json_dict()
    assert first.warm_insts == 0
    assert second.warm_insts > 0
    # Region boundaries 1..K-1 were snapshotted by the generator pass.
    assert ResultStore(ck).checkpoint_stats()["checkpoints"] == 3
    # Sampled results are marked estimates.
    assert not first.finished
    assert first.stats["sampled.regions"] == 4.0
    assert first.stats["sampled.measured_insts"] > 0


def test_sampling_without_store_is_deterministic():
    point = _point(sampling=RegionSampling(regions=3,
                                           window_insts=200))
    first = run_points([point], cache=False)
    second = run_points([point], cache=False)
    assert next(iter(first.results)).to_json_dict() == \
        next(iter(second.results)).to_json_dict()


def test_sampling_with_huge_window_degenerates_to_exact():
    cold = next(iter(run_points([_point()], cache=False).results))
    point = _point(sampling=RegionSampling(regions=1,
                                           window_insts=10**9))
    sampled = next(iter(run_points([point], cache=False).results))
    assert sampled.cycles == cold.cycles
    assert sampled.insts == cold.insts
    # Exact in every shared counter; only the sampled.* markers differ.
    shared = {name: value for name, value in sampled.stats.items()
              if not name.startswith("sampled.")}
    assert shared == cold.stats


def test_sampling_estimate_tracks_exact_run():
    cold = next(iter(run_points([_point()], cache=False).results))
    point = _point(sampling=RegionSampling(regions=4,
                                           window_insts=300))
    sampled = next(iter(run_points([point], cache=False).results))
    assert abs(sampled.cycles - cold.cycles) / cold.cycles < 0.25
    speedup = (cold.insts
               / sampled.stats["sampled.measured_insts"])
    assert speedup > 1.5, "sampling must simulate far fewer insts"


def test_sampling_validation():
    with pytest.raises(ValueError, match="max_insts"):
        run_points([_point(max_insts=None,
                           sampling=RegionSampling(regions=2,
                                                   window_insts=10))],
                   cache=False)
    with pytest.raises(ValueError, match="mutually exclusive"):
        run_points([_point(warmup_insts=100,
                           sampling=RegionSampling(regions=2,
                                                   window_insts=10))],
                   cache=False)
    with pytest.raises(ValueError):
        RegionSampling(regions=0, window_insts=10)
    with pytest.raises(ValueError):
        RegionSampling(regions=2, window_insts=0)


def test_warm_start_parallel_workers(tmp_path):
    """The pool path: worker processes open their own checkpoint-store
    connections (fork-inherited sqlite handles are never reused)."""
    ck = str(tmp_path / "ck.sqlite")
    points = [
        _point(warmup_insts=1500),
        _point(defense=registry["GhostMinion"](), warmup_insts=1500),
    ]
    first = run_points(points, jobs=2, cache=False, checkpoints=ck)
    second = run_points(points, jobs=2, cache=False, checkpoints=ck)
    assert ResultStore(ck).checkpoint_stats()["checkpoints"] == 2
    assert second.warm_insts() >= 3000
    for before, after in zip(first.results, second.results):
        assert before.to_json_dict() == after.to_json_dict()


def test_checkpoint_db_derived_from_store_cache(tmp_path):
    """--db gives warm-start for free: the result store doubles as the
    checkpoint database."""
    db = str(tmp_path / "results.sqlite")
    point = _point(warmup_insts=1500)
    with ResultStore(db, run_meta=RunMeta.capture()) as store:
        run_points([point], cache=store)
        assert store.checkpoint_stats()["checkpoints"] == 1
    # Second engine invocation: the *result* is a cache hit, so no
    # simulation happens at all — the checkpoint is belt to that
    # suspender for cache-missing points sharing the prefix.
    with ResultStore(db, run_meta=RunMeta.capture()) as store:
        report = run_points([_point(max_insts=2500,
                                    warmup_insts=1500)],
                            cache=store)
        assert report.cache_hits == 0
        assert report.warm_insts() >= 1500
