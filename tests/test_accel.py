"""Hot-core build selection (:mod:`repro.accel`) and its parity contract.

The compiled (mypyc) hot core is optional — ``REPRO_BUILD_ACCEL=1 pip
install -e '.[accel]'`` — and this checkout may or may not carry it.
Every test here therefore asserts the *contract*, not a particular
build: whatever ``REPRO_ACCEL`` selects must be byte-identical to the
pure-Python differential oracle, and a missing extension must degrade
gracefully.  The subprocess probes run both sides of each comparison
through ``python -m repro.accel --digest``, so on an accelerated
install they genuinely compare compiled vs pure.
"""

import hashlib
import json
import os
import subprocess
import sys

import repro.accel as accel

SCALE = "0.02"


def _run_py(code, extra_env=None):
    """Run ``code`` in a fresh interpreter with src/ on the path."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH")) if p)
    env.update(extra_env or {})
    return subprocess.run([sys.executable, "-c", code],
                          capture_output=True, text=True, env=env,
                          cwd=os.path.join(os.path.dirname(__file__),
                                           os.pardir))


def _digest_probe(accel_env):
    out = _run_py(
        "import repro.accel, sys; sys.exit(repro.accel.main("
        "['--digest', '--scale', %r]))" % SCALE,
        {"REPRO_ACCEL": accel_env})
    assert out.returncode == 0, out.stderr
    return json.loads(out.stdout)


# -- selection surface -----------------------------------------------------


def test_accel_status_shape():
    status = accel.accel_status()
    assert set(status) == {"requested", "compiled_available", "active",
                           "module_file"}
    assert status["active"] in ("compiled", "pure")
    if not status["compiled_available"]:
        assert status["active"] == "pure"
        assert status["module_file"].endswith("hotcore.py")


def test_load_hotcore_is_canonical_and_idempotent():
    module = accel.load_hotcore()
    assert sys.modules["repro.pipeline.hotcore"] is module
    assert accel.load_hotcore() is module
    # The module carries the hot-core surface the orchestrator re-exports.
    for name in ("HotCore", "DynInst"):
        assert hasattr(module, name)


def test_core_module_uses_selected_build():
    """pipeline.core must route through the accel loader, not a plain
    import — otherwise REPRO_ACCEL would silently stop working."""
    import repro.pipeline.core as core
    module = accel.load_hotcore()
    assert core.HotCore is module.HotCore
    assert core.DynInst is module.DynInst


def test_missing_extension_fallback_warns():
    """REPRO_ACCEL=1 without the extension: warn, run pure, still work."""
    out = _run_py(
        "import json, repro.accel as a; "
        "print(json.dumps(a.accel_status()))",
        {"REPRO_ACCEL": "1"})
    assert out.returncode == 0, out.stderr
    status = json.loads(out.stdout)
    assert status["requested"] == "1"
    if not status["compiled_available"]:
        assert status["active"] == "pure"
        assert "falling back to pure Python" in out.stderr


# -- byte-identical parity across builds -----------------------------------


def test_digest_parity_pure_vs_accel():
    """The tentpole gate: REPRO_ACCEL=0 (oracle) and REPRO_ACCEL=1
    (compiled when installed) agree on cycles/stats/regs, bit for bit."""
    pure = _digest_probe("0")
    fast = _digest_probe("1")
    assert pure["active"] == "pure"
    assert pure["digest"] == fast["digest"]
    assert pure["cycles"] == fast["cycles"]
    assert pure["insts"] == fast["insts"]
    assert pure["skipped_cycles"] == fast["skipped_cycles"]


_CHECKPOINT_SNIPPET = """
import hashlib, json, sys
from repro.defenses import registry
from repro.sim.simulator import Simulator
from repro.workloads.spec import get_workload

programs = get_workload("mcf").build(%(scale)s)
sim = Simulator(programs, registry["GhostMinion"]())
mode = sys.argv[1]
if mode == "save":
    sim.run(max_insts=300)
    with open(sys.argv[2], "wb") as fh:
        fh.write(sim.snapshot())
    sys.exit(0)
if mode == "restore":
    with open(sys.argv[2], "rb") as fh:
        sim = Simulator.restore(fh.read())
result = sim.run()
canonical = json.dumps({"cycles": result.cycles,
                        "stats": result.stats.as_dict(),
                        "regs": [c.arch_regs() for c in sim.cores]},
                       sort_keys=True)
print(hashlib.sha256(canonical.encode()).hexdigest())
""" % {"scale": SCALE}


def _checkpoint_run(mode, path, accel_env):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH")) if p)
    env["REPRO_ACCEL"] = accel_env
    out = subprocess.run(
        [sys.executable, "-c", _CHECKPOINT_SNIPPET, mode, path],
        capture_output=True, text=True, env=env,
        cwd=os.path.join(os.path.dirname(__file__), os.pardir))
    assert out.returncode == 0, out.stderr
    return out.stdout.strip()


def test_checkpoint_blobs_cross_builds(tmp_path):
    """A checkpoint written under one build restores under the other.

    Blob *bytes* are not compared (pickle serialization order is not
    canonical); the contract is restore-equivalence: both restored
    continuations and the uninterrupted run all finish byte-identical.
    """
    blob_pure = str(tmp_path / "pure.ck")
    blob_fast = str(tmp_path / "fast.ck")
    _checkpoint_run("save", blob_pure, "0")
    _checkpoint_run("save", blob_fast, "1")
    straight = _checkpoint_run("cold", "-", "0")
    # 0 -> 1 and 1 -> 0, plus each build restoring its own blob.
    assert _checkpoint_run("restore", blob_pure, "1") == straight
    assert _checkpoint_run("restore", blob_fast, "0") == straight
    assert _checkpoint_run("restore", blob_pure, "0") == straight
    assert _checkpoint_run("restore", blob_fast, "1") == straight


def test_digest_helper_matches_documented_shape():
    """_digest_payload covers exactly what the parity contract names."""
    payload = accel._digest_payload(float(SCALE))
    assert set(payload) >= {"active", "cycles", "insts", "digest",
                            "seconds", "skipped_cycles"}
    assert len(payload["digest"]) == len(hashlib.sha256().hexdigest())
