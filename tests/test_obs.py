"""The observability layer: tracer, metrics, sinks, run log, store.

Parity between traced and untraced simulation lives in
tests/test_scheduler_equivalence.py; this file covers the obs
machinery itself — event folding, sampling (including skip-window
jumps), the sink exports, the run-log schema, the metrics table in
the result store, and the obs-guards lint scan.
"""

import ast
import io
import json
import os

import pytest

from repro.defenses import registry
from repro.obs import (
    ObsConfig,
    RUNLOG_SCHEMA_VERSION,
    MetricsSampler,
    RunLog,
    Tracer,
    build_inst_records,
    build_tracer,
)
from repro.obs.sinks import SINKS, export_traces, sink_paths
from repro.obs.trace import TraceEvent
from repro.sim.simulator import Simulator
from repro.workloads.spec import get_workload


def traced_run(workload="mcf", scale=0.04, defense="GhostMinion",
               interval=500):
    programs = get_workload(workload).build(scale)
    sim = Simulator(programs, registry[defense]())
    tracer = build_tracer(ObsConfig(metrics_interval=interval))
    sim.attach_obs(tracer)
    result = sim.run()
    return result, sim, tracer


@pytest.fixture(scope="module")
def traced():
    return traced_run()


# -- zero-cost default -----------------------------------------------------

def test_obs_defaults_to_none_everywhere():
    programs = get_workload("mcf").build(0.04)
    sim = Simulator(programs, registry["GhostMinion"]())
    assert sim._obs is None
    for core in sim.cores:
        assert core._obs is None
        for port in (core.hierarchy.dport, core.hierarchy.iport):
            assert port.cache._obs is None
            assert port.mshrs._obs is None
    assert sim.shared.l2._obs is None
    assert sim.shared.l2_mshrs._obs is None


def test_attach_detach_roundtrip():
    programs = get_workload("mcf").build(0.04)
    sim = Simulator(programs, registry["GhostMinion"]())
    tracer = Tracer()
    sim.attach_obs(tracer)
    assert sim.cores[0]._obs is tracer
    assert sim.detach_obs() is tracer
    assert sim._obs is None and sim.cores[0]._obs is None


# -- tracer and event folding ----------------------------------------------

def test_tracer_emits_all_kinds(traced):
    _, _, tracer = traced
    by_kind = tracer.summary()["by_kind"]
    for kind in ("stage", "mem", "skip", "marker"):
        assert by_kind.get(kind, 0) > 0, kind
    assert tracer.dropped == 0


def test_tracer_limit_drops_and_counts():
    tracer = Tracer(limit=3)
    for cycle in range(10):
        tracer.emit_squash(0, cycle, cycle)
    assert len(tracer.events) == 3
    assert tracer.dropped == 7
    assert tracer.summary()["by_kind"]["squash"] == 10


def test_build_inst_records_folds_lifetimes(traced):
    _, _, tracer = traced
    records = build_inst_records(tracer.events)
    assert records
    committed = [r for r in records.values()
                 if r.commit is not None and not r.squashed]
    assert committed
    for record in committed:
        assert record.fetch <= record.commit
    # Squashed instructions never commit.
    for record in records.values():
        if record.squashed:
            assert record.commit is None


def test_run_markers_bracket_the_run(traced):
    _, _, tracer = traced
    markers = [e for e in tracer.events if e.kind == "marker"]
    assert markers[0].name == "run-begin"
    assert markers[-1].name == "run-end"
    assert markers[-1].args["finished"] is True


# -- metrics sampling ------------------------------------------------------

def test_metrics_sampler_interval():
    sampler = MetricsSampler(interval=100)
    sampler.bind([("x", lambda cycle: float(cycle))])
    for cycle in range(0, 350):
        sampler.on_cycle(cycle)
    cycles = [row[0] for row in sampler.samples]
    assert cycles == [0, 100, 200, 300]
    series = sampler.series()
    assert series["columns"] == ["cycle", "x"]
    assert series["interval"] == 100


def test_metrics_sampler_collapses_skip_jumps():
    """A skipped window lands one sample at the jump target, not one
    per elided interval boundary."""
    sampler = MetricsSampler(interval=100)
    sampler.bind([("x", lambda cycle: 1.0)])
    sampler.on_cycle(0)
    sampler.on_cycle(950)   # the scheduler jumped over 9 boundaries
    sampler.on_cycle(1000)
    cycles = [row[0] for row in sampler.samples]
    assert cycles == [0, 950, 1000]


def test_simulator_samples_default_probes(traced):
    result, _, tracer = traced
    series = tracer.sampler.series()
    assert "ipc" in series["columns"]
    assert "skip_fraction" in series["columns"]
    assert series["samples"], "no metrics sampled"
    last = dict(zip(series["columns"], series["samples"][-1]))
    assert last["cycle"] <= result.cycles
    assert 0.0 <= last["skip_fraction"] <= 1.0


# -- sinks -----------------------------------------------------------------

def test_sink_registry_resolves():
    from repro.registry import component_registry
    reg = component_registry("sink")
    assert reg is SINKS
    assert set(reg.names()) >= {"perfetto", "jsonl", "timeline"}


def test_sink_paths_naming():
    pairs = sink_paths(("perfetto", "jsonl", "timeline"), "/tmp/t.json")
    assert pairs == [("perfetto", "/tmp/t.json"),
                     ("jsonl", "/tmp/t.jsonl"),
                     ("timeline", "/tmp/t.timeline.json")]
    # A collision falls back to inserting the sink name.
    pairs = sink_paths(("jsonl", "jsonl(metrics=False)"), "/tmp/t.jsonl")
    assert pairs[1][1] == "/tmp/t.jsonl.jsonl"


def test_perfetto_export_is_loadable_chrome_json(tmp_path, traced):
    _, _, tracer = traced
    out = str(tmp_path / "trace.json")
    written = export_traces(tracer, ("perfetto",), out,
                            meta={"workload": "mcf"})
    assert written == [out]
    doc = json.load(open(out))
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ns"
    assert doc["otherData"]["workload"] == "mcf"
    phases = {event["ph"] for event in doc["traceEvents"]}
    assert {"M", "X", "i", "C"} <= phases
    for event in doc["traceEvents"]:
        assert "ph" in event
        if event["ph"] != "M":
            assert "ts" in event
        if event["ph"] == "X":
            assert event["dur"] >= 1


def test_jsonl_export_roundtrip(tmp_path, traced):
    _, _, tracer = traced
    out = str(tmp_path / "trace.jsonl")
    export_traces(tracer, ("jsonl",), out)
    records = [json.loads(line) for line in open(out)]
    assert records[0]["record"] == "header"
    assert records[0]["v"] == 1
    kinds = {}
    for record in records[1:]:
        kinds[record["record"]] = kinds.get(record["record"], 0) + 1
    assert kinds["event"] == len(tracer.events)
    assert kinds["metric"] == len(tracer.sampler.samples)


def test_timeline_export_sorted_by_seq(tmp_path, traced):
    _, _, tracer = traced
    out = str(tmp_path / "t.timeline.json")
    export_traces(tracer, ("timeline",), out)
    doc = json.load(open(out))
    seqs = [record["seq"] for record in doc["records"]]
    assert seqs == sorted(seqs)
    assert doc["v"] == 1


# -- run log ---------------------------------------------------------------

def test_runlog_records_are_schema_versioned_jsonl():
    stream = io.StringIO()
    log = RunLog(stream)
    payload = log.emit("engine-summary", {"points": 3})
    assert payload["v"] == RUNLOG_SCHEMA_VERSION
    lines = stream.getvalue().splitlines()
    assert len(lines) == 1
    parsed = json.loads(lines[0])
    assert parsed == {"v": 1, "event": "engine-summary", "points": 3}
    assert log.records == 1


# -- engine + store integration --------------------------------------------

def test_engine_traced_point_exports_and_stores(tmp_path):
    from repro.exp.engine import run_sweep
    from repro.exp.spec import Sweep
    from repro.store.db import ResultStore, StoreCache

    out = str(tmp_path / "trace.json")
    db = ResultStore(str(tmp_path / "r.sqlite"))
    sweep = Sweep(workloads=["mcf"], defenses=["GhostMinion"],
                  scale=0.04)
    obs = ObsConfig(sinks=("perfetto",), out=out, metrics_interval=500)
    report = run_sweep(sweep, cache=StoreCache(db), obs=obs)
    point = next(iter(report.results))
    assert point.trace_paths == [out]
    assert os.path.exists(out)
    assert point.metrics is not None
    # Metrics series round-trips through the store.
    assert db.metrics_lookup(point.digest) == point.metrics
    assert db.metrics_digests() == [point.digest]
    assert db.stats()["metrics_series"] == 1
    # The canonical payload is untouched by tracing: an untraced rerun
    # digest-hits the traced record.
    rerun = run_sweep(sweep, cache=StoreCache(db))
    repoint = next(iter(rerun.results))
    assert repoint.cached
    assert repoint.cycles == point.cycles
    assert repoint.stats == point.stats
    # The runlog surfaces the export.
    events = [record["event"] for record in report.runlog_records()]
    assert "engine-summary" in events and "trace-export" in events


def test_engine_multi_point_traces_get_distinct_paths(tmp_path):
    from repro.exp.engine import run_sweep
    from repro.exp.spec import Sweep

    out = str(tmp_path / "trace.json")
    sweep = Sweep(workloads=["mcf"], defenses=["Unsafe", "GhostMinion"],
                  scale=0.04)
    report = run_sweep(sweep, cache=None,
                       obs=ObsConfig(sinks=("perfetto",), out=out))
    paths = report.trace_paths()
    assert len(paths) == len(set(paths)) == 2
    for path in paths:
        assert os.path.exists(path)
        assert path.endswith(".json")


def test_store_metrics_replace_on_reinsert(tmp_path):
    from repro.store.db import ResultStore
    db = ResultStore(str(tmp_path / "m.sqlite"))
    first = {"interval": 100, "columns": ["cycle", "x"],
             "samples": [[0, 1.0]]}
    second = {"interval": 200, "columns": ["cycle", "x"],
              "samples": [[0, 1.0], [200, 2.0]]}
    db.metrics_save("d" * 64, first)
    db.metrics_save("d" * 64, second)
    assert db.metrics_lookup("d" * 64) == second
    assert db.metrics_lookup("absent") is None


# -- obs-guards lint scan --------------------------------------------------

def _scan(source):
    from repro.lintkit.checkers.obs_guards import _GuardScan
    scan = _GuardScan()
    scan.visit(ast.parse(source))
    return scan.unguarded


def test_guard_scan_flags_unguarded_emit():
    assert _scan("def f(self):\n"
                 "    self._obs.emit_stage(0, 1, 2, 'op', 'fetch', 3)\n")


def test_guard_scan_accepts_guarded_and_aliased_emits():
    assert not _scan(
        "def f(self):\n"
        "    if self._obs is not None:\n"
        "        self._obs.emit_squash(0, 1, 2)\n"
        "def g(self):\n"
        "    obs = self._obs\n"
        "    if obs is not None:\n"
        "        obs.on_cycle(7)\n")


def test_guard_scan_else_branch_is_not_guarded():
    assert _scan("def f(self):\n"
                 "    if self._obs is None:\n"
                 "        pass\n"
                 "    else:\n"
                 "        pass\n"
                 "    self._obs.emit_marker('m', 0)\n")


def test_obs_guards_checker_is_clean_on_this_tree():
    from repro.lintkit import detect_root, run_lint
    report = run_lint(root=detect_root(), select=["obs-guards"])
    assert report.clean, [str(f) for f in report.findings]


def test_pipeline_tracer_adapter_reuses_obs(traced):
    """The legacy PipelineTracer API rides the obs event stream (see
    tests/test_trace.py for its behavioural suite)."""
    from repro.analysis.trace import PipelineTracer
    programs = get_workload("mcf").build(0.04)
    sim = Simulator(programs, registry["GhostMinion"]())
    tracer = PipelineTracer(sim.cores[0], limit=100)
    sim.run(max_cycles=5000)
    assert tracer.records
    assert tracer.summary()["committed"] > 0
