"""System configuration (Table 1)."""

import pytest

from repro.config import (
    CacheConfig,
    MinionConfig,
    SystemConfig,
    default_config,
    line_of,
    table1_rows,
)


def test_default_matches_table1():
    cfg = default_config()
    assert cfg.core.rob_entries == 192
    assert cfg.core.iq_entries == 64
    assert cfg.core.lq_entries == 32
    assert cfg.core.sq_entries == 32
    assert cfg.core.fetch_width == 8
    assert cfg.l1i.size_bytes == 32 * 1024 and cfg.l1i.mshrs == 4
    assert cfg.l1d.size_bytes == 64 * 1024 and cfg.l1d.latency == 2
    assert cfg.l2.size_bytes == 2 * 1024 * 1024 and cfg.l2.mshrs == 20
    assert cfg.minion_d.size_bytes == 2048 and cfg.minion_d.assoc == 2
    assert cfg.core.predictor.local_entries == 2048
    assert cfg.core.predictor.global_entries == 8192
    assert cfg.core.predictor.btb_entries == 4096
    assert cfg.core.predictor.ras_entries == 16


def test_cache_geometry():
    cache = CacheConfig(64 * 1024, 2, 2, 4)
    assert cache.num_lines == 1024
    assert cache.num_sets == 512


def test_minion_geometry():
    minion = MinionConfig(2048, 2)
    assert minion.num_lines == 32
    assert minion.num_sets == 16


@pytest.mark.parametrize("kwargs", [
    dict(size_bytes=100, assoc=2, latency=2, mshrs=4),   # not line mult
    dict(size_bytes=64, assoc=2, latency=2, mshrs=4),    # < one set
    dict(size_bytes=1024, assoc=2, latency=0, mshrs=4),  # bad latency
    dict(size_bytes=1024, assoc=2, latency=2, mshrs=0),  # no MSHRs
])
def test_cache_validation(kwargs):
    with pytest.raises(ValueError):
        CacheConfig(**kwargs).validate()


def test_system_validation():
    cfg = default_config()
    cfg.cores = 0
    with pytest.raises(ValueError):
        cfg.validate()


def test_copy_is_deep_for_nested_configs():
    cfg = default_config()
    copy = cfg.copy()
    copy.minion_d.size_bytes = 128
    copy.core.rob_entries = 16
    assert cfg.minion_d.size_bytes == 2048
    assert cfg.core.rob_entries == 192


def test_line_of():
    assert line_of(0) == 0
    assert line_of(63) == 0
    assert line_of(64) == 1


def test_table1_rows_render():
    rows = table1_rows()
    labels = [label for label, _ in rows]
    assert "L1 DCache" in labels
    assert "D/I GhostMinions" in labels
    joined = " ".join(text for _, text in rows)
    assert "192-Entry ROB" in joined
    assert "2KiB" in joined
