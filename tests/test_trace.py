"""Pipeline tracer."""

from repro.analysis.trace import PipelineTracer
from repro.defenses import registry
from repro.pipeline.isa import Op
from repro.pipeline.program import ProgramBuilder
from repro.sim.simulator import Simulator


def traced_run(program, defense="Unsafe", limit=300):
    sim = Simulator(program, registry[defense]())
    tracer = PipelineTracer(sim.cores[0], limit=limit)
    result = sim.run(max_cycles=100_000)
    assert result.finished
    return tracer, result


def simple_loop(n=10):
    b = ProgramBuilder()
    b.li(1, n)
    b.label("loop")
    b.load(2, None, imm=0x1000)
    b.alu(Op.SUB, 1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    return b.build()


def test_records_lifetimes():
    tracer, result = traced_run(simple_loop())
    committed = tracer.committed()
    assert committed
    for record in committed:
        assert record.fetch_cycle <= record.commit_cycle
        if record.issue_cycle is not None:
            assert record.fetch_cycle <= record.issue_cycle
            assert record.issue_cycle <= record.commit_cycle


def test_marks_transient_instructions():
    b = ProgramBuilder()
    b.data(0x100, 1)
    b.load(1, None, imm=0x100)
    b.bnez(1, "t")
    b.li(2, 0xBAD)          # wrong path
    b.li(3, 0xBAD)
    b.label("t")
    b.halt()
    tracer, result = traced_run(b.build())
    assert result.stats.get("squash.events") >= 1
    assert tracer.transient()
    assert tracer.squashes


def test_render_and_summary():
    tracer, _result = traced_run(simple_loop())
    art = tracer.render(width=40, count=12)
    assert "C" in art and "|" in art
    summary = tracer.summary()
    assert summary["committed"] > 0
    assert summary["mean_issue_to_commit"] >= 0


def test_limit_caps_records():
    tracer, _result = traced_run(simple_loop(50), limit=10)
    assert len(tracer.records) <= 10


def test_tracing_does_not_change_timing():
    program = simple_loop(20)
    plain = Simulator(program, registry["GhostMinion"]())
    plain_result = plain.run(max_cycles=100_000)
    traced_sim = Simulator(simple_loop(20), registry["GhostMinion"]())
    PipelineTracer(traced_sim.cores[0])
    traced_result = traced_sim.run(max_cycles=100_000)
    assert plain_result.cycles == traced_result.cycles
