"""The experiment engine: sweep expansion, caching, determinism."""

import json
import os

import pytest

from repro.config import default_config
from repro.defenses.ghostminion import ghostminion
from repro.exp import (
    ConfigVariant,
    ResultCache,
    ResultSet,
    Sweep,
    apply_overrides,
    run_points,
    run_sweep,
    shard_points,
    variants_for_axis,
)
from repro.sim.runner import default_scale

SCALE = 0.04


def small_sweep(**overrides):
    kwargs = dict(name="t", workloads=["hmmer", "gamess"],
                  defenses=["Unsafe", "GhostMinion"], scale=SCALE)
    kwargs.update(overrides)
    return Sweep(**kwargs)


# ---------------------------------------------------------------------------
# sweep expansion
# ---------------------------------------------------------------------------

def test_sweep_expansion_order_and_keys():
    points = small_sweep().points()
    assert [p.key for p in points] == [
        "hmmer::Unsafe::base", "hmmer::GhostMinion::base",
        "gamess::Unsafe::base", "gamess::GhostMinion::base"]
    assert all(p.scale == SCALE for p in points)


def test_sweep_variant_expansion():
    variants = [ConfigVariant.make("big", {"minion_d.size_bytes": 4096}),
                ConfigVariant.make("small", {"minion_d.size_bytes": 128})]
    points = Sweep(workloads=["hmmer"], defenses=["GhostMinion"],
                   variants=variants, scale=SCALE).points()
    assert len(points) == 2
    assert points[0].config().minion_d.size_bytes == 4096
    assert points[1].config().minion_d.size_bytes == 128


def test_sweep_duplicate_keys_rejected():
    # Two distinct defense objects that share a display name collide.
    with pytest.raises(ValueError):
        Sweep(workloads=["hmmer"],
              defenses=[ghostminion(), ghostminion(async_reload=True)],
              scale=SCALE).points()


def test_sweep_unknown_workload_and_defense():
    with pytest.raises(KeyError):
        Sweep(workloads=["doom"], defenses=["Unsafe"]).points()
    with pytest.raises(KeyError):
        Sweep(workloads=["hmmer"], defenses=["NotADefense"]).points()


def test_variants_for_axis_cross_product():
    variants = variants_for_axis({
        "minion_d.size_bytes": [2048, 128],
        "dram.open_page": [True, False]})
    assert len(variants) == 4
    labels = [v.label for v in variants]
    assert "minion_d.size_bytes=2048,dram.open_page=True" in labels


def test_apply_overrides_rejects_unknown_path():
    cfg = default_config()
    with pytest.raises(AttributeError):
        apply_overrides(cfg, {"minion_d.size_bytez": 128})
    with pytest.raises(AttributeError):
        apply_overrides(cfg, {"not_a_field": 1})


def test_apply_overrides_does_not_mutate_base():
    cfg = default_config()
    new = apply_overrides(cfg, {"minion_d.size_bytes": 128})
    assert cfg.minion_d.size_bytes == 2048
    assert new.minion_d.size_bytes == 128


def test_scale_env_resolved_lazily(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.125")
    assert default_scale() == 0.125
    points = Sweep(workloads=["hmmer"], defenses=["Unsafe"]).points()
    assert points[0].scale == 0.125
    monkeypatch.delenv("REPRO_SCALE")
    assert default_scale() == 1.0


# ---------------------------------------------------------------------------
# cache behaviour
# ---------------------------------------------------------------------------

def test_cache_miss_then_hit(tmp_path):
    sweep = small_sweep()
    first = run_sweep(sweep, cache=str(tmp_path))
    assert first.cache_hits == 0
    assert first.executed == 4
    second = run_sweep(sweep, cache=str(tmp_path))
    assert second.cache_hits == 4
    assert second.executed == 0
    assert all(p.cached for p in second.results)
    assert (first.results.to_json() == second.results.to_json())


def test_cache_invalidated_by_config_change(tmp_path):
    base = Sweep(workloads=["hmmer"], defenses=["GhostMinion"],
                 scale=SCALE,
                 variants=[ConfigVariant.make(
                     "v", {"minion_d.size_bytes": 2048})])
    changed = Sweep(workloads=["hmmer"], defenses=["GhostMinion"],
                    scale=SCALE,
                    variants=[ConfigVariant.make(
                        "v", {"minion_d.size_bytes": 256})])
    run_sweep(base, cache=str(tmp_path))
    report = run_sweep(changed, cache=str(tmp_path))
    assert report.cache_hits == 0
    assert report.executed == 1
    # ... and the unchanged config still hits.
    again = run_sweep(base, cache=str(tmp_path))
    assert again.cache_hits == 1


def test_cache_invalidated_by_scale_and_defense(tmp_path):
    run_sweep(Sweep(workloads=["hmmer"], defenses=["GhostMinion"],
                    scale=SCALE), cache=str(tmp_path))
    rescaled = run_sweep(
        Sweep(workloads=["hmmer"], defenses=["GhostMinion"],
              scale=SCALE * 2), cache=str(tmp_path))
    assert rescaled.cache_hits == 0
    async_gm = ghostminion(async_reload=True)
    async_gm.name = "GhostMinion-async"
    other_defense = run_sweep(
        Sweep(workloads=["hmmer"], defenses=[async_gm], scale=SCALE),
        cache=str(tmp_path))
    assert other_defense.cache_hits == 0


def test_cache_survives_corrupt_entry(tmp_path):
    sweep = Sweep(workloads=["hmmer"], defenses=["Unsafe"], scale=SCALE)
    run_sweep(sweep, cache=str(tmp_path))
    cache = ResultCache(str(tmp_path))
    digest = sweep.points()[0].digest()
    with open(cache.path_for(digest), "w") as handle:
        handle.write("not json{")
    report = run_sweep(sweep, cache=str(tmp_path))
    assert report.cache_hits == 0 and report.executed == 1
    # the corrupt entry was rewritten
    assert run_sweep(sweep, cache=str(tmp_path)).cache_hits == 1


def test_cache_invalidated_by_code_change(tmp_path, monkeypatch):
    """The digest folds in a source-tree fingerprint: simulator edits
    must not serve stale cached numbers."""
    import repro.exp.spec as spec_mod
    sweep = Sweep(workloads=["hmmer"], defenses=["Unsafe"], scale=SCALE)
    run_sweep(sweep, cache=str(tmp_path))
    monkeypatch.setattr(spec_mod, "_CODE_FINGERPRINT",
                        "0" * 64)  # simulate edited sources
    report = run_sweep(sweep, cache=str(tmp_path))
    assert report.cache_hits == 0 and report.executed == 1


def test_program_memo_not_aliased_by_name(tmp_path):
    """Distinct specs sharing a display name must not reuse each
    other's programs within one engine invocation."""
    from repro.workloads.spec import WorkloadSpec
    stream = WorkloadSpec(name="dup", suite="x", kernel="stream",
                          base_iters=400,
                          params={"footprint_lines": 256})
    chase = WorkloadSpec(name="dup", suite="x", kernel="pchase",
                         base_iters=400, params={"nodes": 1024})
    first = run_points(
        Sweep(workloads=[stream], defenses=["Unsafe"],
              scale=SCALE).points()).results
    second = run_points(
        Sweep(workloads=[stream], defenses=["Unsafe"],
              scale=SCALE).points()
        + Sweep(workloads=[chase], defenses=["GhostMinion"],
                scale=SCALE).points()).results
    chase_alone = run_points(
        Sweep(workloads=[chase], defenses=["GhostMinion"],
              scale=SCALE).points()).results
    assert (second.get("dup::Unsafe::base").cycles
            == first.get("dup::Unsafe::base").cycles)
    assert (second.get("dup::GhostMinion::base").cycles
            == chase_alone.get("dup::GhostMinion::base").cycles)


def test_cache_dir_from_environment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    report = run_sweep(Sweep(workloads=["hmmer"], defenses=["Unsafe"],
                             scale=SCALE), cache=True)
    assert report.executed == 1
    assert os.path.isdir(str(tmp_path / "envcache"))


# ---------------------------------------------------------------------------
# determinism: parallel == serial, byte for byte
# ---------------------------------------------------------------------------

def test_parallel_matches_serial_byte_identical():
    sweep = small_sweep()
    serial = run_sweep(sweep, jobs=1)
    parallel = run_sweep(sweep, jobs=3)
    assert parallel.jobs == 3
    assert serial.results.to_json() == parallel.results.to_json()
    assert serial.results.to_json() == run_sweep(
        sweep, jobs=2).results.to_json()


def test_resultset_roundtrip_and_shapes():
    report = run_sweep(small_sweep())
    text = report.results.to_json(indent=2)
    clone = ResultSet.from_json(text)
    assert clone.to_json() == report.results.to_json()
    table = report.results.as_run_results()
    assert set(table) == {"hmmer", "gamess"}
    assert set(table["hmmer"]) == {"Unsafe", "GhostMinion"}
    run_result = table["hmmer"]["GhostMinion"]
    assert run_result.cycles > 0
    assert run_result.insts > 100
    assert 0 < run_result.ipc <= 8
    payload = json.loads(text)
    assert payload["format"] == 1


def test_resultset_roundtrip_with_cache_hit_flags(tmp_path):
    """The cached flag is runtime metadata: a fully cache-hit sweep
    serializes byte-identically to the original run, and the canonical
    form survives a from_json/to_json round trip either way."""
    sweep = small_sweep()
    executed = run_sweep(sweep, cache=str(tmp_path))
    cached = run_sweep(sweep, cache=str(tmp_path))
    assert not any(p.cached for p in executed.results)
    assert all(p.cached for p in cached.results)
    assert executed.results.to_json() == cached.results.to_json()
    clone = ResultSet.from_json(cached.results.to_json(indent=2))
    assert clone.to_json() == cached.results.to_json()
    # deserialized points are fresh canonical data, not cache hits
    assert not any(p.cached for p in clone)
    assert clone.cache_hits() == 0 and cached.results.cache_hits() == 4


def test_shard_partition_determinism():
    """All shards disjoint, union == full sweep, stable across runs."""
    points = small_sweep().points()
    shards = [shard_points(points, i, 3) for i in range(3)]
    keys = [p.key for shard in shards for p in shard]
    assert len(keys) == len(points)
    assert set(keys) == {p.key for p in points}
    again = [[p.key for p in shard_points(small_sweep().points(), i, 3)]
             for i in range(3)]
    assert again == [[p.key for p in shard] for shard in shards]


def test_run_points_mixed_sweeps_single_invocation(tmp_path):
    # figure11-style composition: several sweeps, one engine call.
    points = (Sweep(workloads=["hmmer"], defenses=["Unsafe"],
                    scale=SCALE).points()
              + Sweep(workloads=["hmmer"], defenses=["GhostMinion"],
                      variants=[ConfigVariant.make(
                          "128B", {"minion_d.size_bytes": 128})],
                      scale=SCALE).points())
    report = run_points(points, cache=str(tmp_path))
    assert report.total == 2
    assert report.results.keys() == [
        "hmmer::Unsafe::base", "hmmer::GhostMinion::128B"]


# ---------------------------------------------------------------------------
# timing telemetry
# ---------------------------------------------------------------------------

def test_point_timings_keep_fixed_columns_across_cached_points(tmp_path):
    """Cached points get a timing row too (seconds 0.0, cached True) —
    mixed cached/fresh sweeps must not change the table's shape."""
    sweep = small_sweep(workloads=["hmmer"])
    run_sweep(sweep, cache=str(tmp_path))          # populate
    report = run_sweep(sweep, cache=str(tmp_path))  # all hits
    rows = report.point_timings()
    assert len(rows) == report.total == 2
    expected_keys = {"key", "seconds", "cycles", "cached",
                     "warm_insts", "skipped_cycles", "skipped_by_class"}
    for row in rows:
        assert set(row) == expected_keys
        assert row["cached"] is True
        assert row["seconds"] == 0.0
    # Cached rows never surface in the slowest-points summary.
    assert "slowest" not in report.timing_summary()
    assert report.sim_seconds() == 0.0
    meta = report.timing_meta()
    assert meta["warm_insts"] == 0
    assert len(meta["points"]) == 2
