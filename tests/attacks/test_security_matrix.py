"""The security results the paper claims, as executable assertions.

Expected matrix (see §6 / §2.2 and the cited attack papers):

=====================  ========  ==============  ==============
defense                Spectre   SpectreRewind   Interference
=====================  ========  ==============  ==============
Unsafe                 LEAK      LEAK            LEAK
GhostMinion            safe      LEAK*           safe
GhostMinion+strictFU   safe      safe            safe
MuonTrap (base)        LEAK      LEAK            LEAK
MuonTrap-Flush         safe      LEAK            LEAK
InvisiSpec (both)      safe      LEAK            LEAK
STT (both)             safe      safe            safe
=====================  ========  ==============  ==============

(*) the cache-side GhostMinion alone does not order non-pipelined FU
issue; the paper adds strictness-ordered FU scheduling in §4.9, which we
enable via ``strict_fu_order``.
"""

import pytest

from repro.attacks import interference, spectre, spectre_rewind
from repro.defenses.ghostminion import ghostminion


def gm_strict():
    defense = ghostminion(strict_fu_order=True)
    defense.name = "GhostMinion+strictFU"
    return defense


# -- Spectre v1 ----------------------------------------------------------------

def test_spectre_leaks_on_unsafe():
    result = spectre.run("Unsafe", 5)
    assert result.correct, "attacker failed to recover the secret"
    assert spectre.leaks("Unsafe")


def test_spectre_recovers_arbitrary_secrets_on_unsafe():
    for secret in (1, 3, 6):
        assert spectre.run("Unsafe", secret).correct


def test_spectre_blocked_by_ghostminion():
    assert not spectre.leaks("GhostMinion")


def test_spectre_timings_uniform_under_ghostminion():
    """Stronger than 'wrong guess': the probe timings must carry no
    information at all (all candidates equal)."""
    result = spectre.run("GhostMinion", 5)
    values = sorted(result.timings.values())
    assert values[-1] - values[1] <= 2  # first probe may overlap warmup


def test_spectre_leaks_through_base_muontrap():
    """MuonTrap is a cross-process defense: same-address-space Spectre
    still works because the L0 is not cleared on misspeculation."""
    assert spectre.leaks("MuonTrap")


@pytest.mark.parametrize("defense", [
    "MuonTrap-Flush", "InvisiSpec-Spectre", "InvisiSpec-Future",
    "STT-Spectre", "STT-Future"])
def test_spectre_blocked_by_other_defenses(defense):
    assert not spectre.leaks(defense)


# -- SpectreRewind ---------------------------------------------------------------

@pytest.mark.parametrize("defense", [
    "Unsafe", "GhostMinion", "MuonTrap", "MuonTrap-Flush",
    "InvisiSpec-Spectre", "InvisiSpec-Future"])
def test_rewind_defeats_speculation_hiding(defense):
    """Backwards-in-time divider contention defeats every
    speculation-hiding scheme (§2.2, SpectreRewind)."""
    assert spectre_rewind.leaks(defense)


def test_rewind_blocked_by_strict_fu_order():
    assert not spectre_rewind.leaks(gm_strict())


@pytest.mark.parametrize("defense", ["STT-Spectre", "STT-Future"])
def test_rewind_blocked_by_stt(defense):
    assert not spectre_rewind.leaks(defense)


# -- Speculative Interference ------------------------------------------------------

def test_interference_leaks_on_unsafe():
    assert interference.leaks("Unsafe")


def test_interference_blocked_by_ghostminion_leapfrogging():
    """The headline mechanism: the older load steals the MSHR back."""
    assert not interference.leaks("GhostMinion")
    result = interference.run("GhostMinion", 1)
    assert result.timings[0] == interference.run(
        "GhostMinion", 0).timings[0]


@pytest.mark.parametrize("defense", [
    "MuonTrap", "MuonTrap-Flush", "InvisiSpec-Spectre",
    "InvisiSpec-Future"])
def test_interference_defeats_invisible_speculation(defense):
    """Matches Behnia et al.: invisible-speculation schemes do not stop
    MSHR-contention channels."""
    assert interference.leaks(defense)


@pytest.mark.parametrize("defense", ["STT-Spectre", "STT-Future"])
def test_interference_blocked_by_stt(defense):
    """The gadget loads' addresses are tainted: STT delays them."""
    assert not interference.leaks(defense)


# -- noninterference property -------------------------------------------------------

def test_ghostminion_committed_timing_independent_of_secret():
    """Definition 1's consequence, measured end to end: the committed
    timing of the whole Spectre attack program is identical for every
    secret value under GhostMinion."""
    cycles = set()
    for secret in (2, 5, 7):
        from repro.attacks.common import attack_config
        from repro.sim.simulator import Simulator
        program = spectre.build_program(secret)
        sim = Simulator(program, ghostminion(), cfg=attack_config())
        result = sim.run(max_cycles=2_000_000)
        assert result.finished
        cycles.add(result.cycles)
    assert len(cycles) == 1


def test_unsafe_committed_timings_depend_on_secret():
    """Under Unsafe the *per-candidate* committed timings (the channel)
    differ with the secret, even though the attack's total run length
    happens to be constant (one fast probe either way)."""
    vectors = {tuple(sorted(spectre.run("Unsafe", s).timings.items()))
               for s in (2, 5)}
    assert len(vectors) == 2
