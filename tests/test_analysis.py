"""Stats, report formatting and the §6.5 power model."""

import math

import pytest

from repro.analysis.power import SRAMModel, power_report
from repro.analysis.report import (
    format_table,
    geomean,
    normalised_series,
    render_bars,
)
from repro.analysis.stats import Stats
from repro.config import default_config


# -- stats ---------------------------------------------------------------------

def test_stats_bump_get():
    stats = Stats()
    stats.bump("x")
    stats.bump("x", 2)
    assert stats.get("x") == 3
    assert stats.get("missing") == 0
    assert stats.get("missing", 7) == 7


def test_stats_merge():
    a, b = Stats(), Stats()
    a.bump("x", 1)
    b.bump("x", 2)
    b.bump("y", 5)
    a.merge(b)
    assert a.get("x") == 3 and a.get("y") == 5


def test_stats_ratio_and_ipc():
    stats = Stats()
    stats.set("commit.insts", 50)
    stats.set("sim.cycles", 100)
    assert stats.ipc() == 0.5
    assert stats.ratio("commit.insts", "nothing") == 0


# -- report ----------------------------------------------------------------------

def test_geomean():
    assert geomean([1, 4]) == pytest.approx(2.0)
    assert geomean([]) == 0.0
    with pytest.raises(ValueError):
        geomean([1, 0])


def test_normalised_series_appends_geomean():
    table = {"a": {"X": 2.0, "Y": 1.0}, "b": {"X": 8.0, "Y": 1.0}}
    rows = normalised_series(table, ["X", "Y"])
    assert rows[-1][0] == "geomean"
    assert rows[-1][1] == pytest.approx(4.0)
    assert rows[-1][2] == pytest.approx(1.0)


def test_format_table_aligns():
    text = format_table(["name", "v"], [("aa", 1.5), ("b", 2.25)])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "1.500" in text and "2.250" in text


def test_render_bars():
    text = render_bars({"A": 1.0, "B": 2.0})
    assert "A" in text and "#" in text
    assert render_bars({}) == "(no data)"


# -- power (§6.5 anchors) -----------------------------------------------------------

def test_minion_static_power_anchor():
    assert SRAMModel(2048).leakage_mw == pytest.approx(0.47, abs=0.01)


def test_l1_static_power_anchor():
    assert SRAMModel(64 * 1024).leakage_mw == pytest.approx(12.8, abs=0.1)


def test_minion_read_energy_anchor():
    assert SRAMModel(2048).read_energy_pj == pytest.approx(1.5, abs=0.05)


def test_l1_read_energy_anchor():
    assert SRAMModel(64 * 1024).read_energy_pj == pytest.approx(
        8.6, abs=0.1)


def test_energy_scales_with_size():
    assert SRAMModel(4096).read_energy_pj > SRAMModel(2048).read_energy_pj
    assert SRAMModel(1024).leakage_mw < SRAMModel(2048).leakage_mw


def test_power_report_dynamic_power_arithmetic():
    """Dynamic power = event energies over simulated wall-clock at 2 GHz
    (§6.5's accounting: a Minion read per L1 read, a write per fill, a
    read-out per commit move)."""
    stats = Stats()
    stats.set("sim.cycles", 1_000_000)
    stats.set("dminion.read_hits", 100_000)
    stats.set("dminion.misses", 200_000)
    stats.set("dminion.fills", 150_000)
    stats.set("dminion.commit_moves", 100_000)
    report = power_report(stats, default_config())
    seconds = 1_000_000 / 2.0e9
    read_pj = report.minion_read_pj
    expected_pj = (300_000 * read_pj + 150_000 * 1.2 * read_pj
                   + 100_000 * read_pj)
    expected_uw = expected_pj * 1e-12 / seconds * 1e6
    assert report.dminion_dynamic_uw == pytest.approx(expected_uw)
    assert report.iminion_dynamic_uw == 0.0
    rows = dict(report.rows())
    assert "GhostMinion static power" in rows


def test_power_report_handles_empty_run():
    report = power_report(Stats(), default_config())
    assert report.dminion_dynamic_uw == 0.0
    assert math.isfinite(report.minion_static_mw)
