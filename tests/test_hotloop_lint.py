"""Hot-loop lint: the per-cycle path must stay on interned stat slots.

The compiled hot core (and the components it drives every cycle) bumps
counters through integer handles resolved once at construction — never
through the string-keyed ``Stats.bump`` — and never re-interns on a hot
path.  These rules are enforced structurally, by AST scan over the whole
source tree, so a future edit cannot quietly reintroduce per-cycle
string hashing:

- ``.bump(...)`` appears nowhere in ``src/repro`` except inside
  :mod:`repro.analysis.stats` itself (whose string-keyed view is the
  cold-path API for reports and tests);
- ``.handle(...)`` is only called from ``__init__`` methods (again,
  stats.py excepted), i.e. interning happens at construction time.
"""

import ast
import os

SRC_ROOT = os.path.join(os.path.dirname(__file__), os.pardir,
                        "src", "repro")

#: The string-keyed view lives here; everything in it is cold path.
EXEMPT = {os.path.join("analysis", "stats.py")}


def _python_sources():
    for dirpath, _dirnames, filenames in os.walk(SRC_ROOT):
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, SRC_ROOT)
            if rel in EXEMPT:
                continue
            yield rel, path


class _CallScan(ast.NodeVisitor):
    """Collect method-call sites of interest with their enclosing
    function name."""

    def __init__(self):
        self.stack = []
        self.bumps = []
        self.handles_outside_init = []

    def _visit_func(self, node):
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_Call(self, node):
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "bump":
                self.bumps.append(node.lineno)
            elif func.attr == "handle":
                if "__init__" not in self.stack:
                    self.handles_outside_init.append(node.lineno)
        self.generic_visit(node)


def _scan(path):
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    scan = _CallScan()
    scan.visit(tree)
    return scan


def test_no_string_keyed_bumps_outside_stats():
    offenders = []
    for rel, path in _python_sources():
        scan = _scan(path)
        offenders.extend("%s:%d" % (rel, line) for line in scan.bumps)
    assert not offenders, (
        "string-keyed Stats.bump() on a simulation path — intern a "
        "handle in __init__ and use stats.add(slot):\n  "
        + "\n  ".join(offenders))


def test_handles_interned_only_at_construction():
    offenders = []
    for rel, path in _python_sources():
        scan = _scan(path)
        offenders.extend("%s:%d" % (rel, line)
                         for line in scan.handles_outside_init)
    assert not offenders, (
        "Stats.handle() outside __init__ — interning belongs at "
        "construction, not on a per-cycle path:\n  "
        + "\n  ".join(offenders))


def test_scan_covers_the_hot_modules():
    """The walk actually reaches the per-cycle files this lint exists
    for (guards against a src layout move silently emptying the scan)."""
    seen = {rel.replace(os.sep, "/") for rel, _path in _python_sources()}
    for expected in ("pipeline/hotcore.py", "memory/cache.py",
                     "memory/mshr.py", "memory/hierarchy.py"):
        assert expected in seen
