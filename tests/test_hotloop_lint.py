"""Hot-loop lint: the per-cycle path must stay on interned stat slots.

The standalone AST walk this file used to carry moved into the lint
framework as the ``stats-slots`` checker
(src/repro/lintkit/checkers/stats_slots.py); the test is now a thin
``repro lint --select stats-slots`` invocation asserting zero
findings, plus an equivalence check pinning the checker to the exact
violation set the original walk reported (both are empty on a clean
tree — the equivalence test proves they *stay* equal by construction,
not by luck).
"""

import ast
import os

from repro.lintkit import run_lint

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir))


def test_stats_slot_lint_clean():
    """`repro lint --select stats-slots` reports nothing on the tree."""
    report = run_lint(root=REPO_ROOT, select=["stats-slots"])
    assert report.clean, report.render_text()
    assert report.checkers == ["stats-slots"]


def _legacy_walk():
    """The original tests/test_hotloop_lint.py scan, kept verbatim as
    the reference implementation: (path, line, kind) offender tuples
    over src/repro with analysis/stats.py exempt."""
    src_root = os.path.join(REPO_ROOT, "src", "repro")
    exempt = {os.path.join("analysis", "stats.py")}
    offenders = []
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, src_root)
            if rel in exempt:
                continue
            with open(path, "r", encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=path)
            stack = []

            def walk(node):
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    stack.append(node.name)
                    for child in ast.iter_child_nodes(node):
                        walk(child)
                    stack.pop()
                    return
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute):
                    if node.func.attr == "bump":
                        offenders.append((rel.replace(os.sep, "/"),
                                          node.lineno, "string-bump"))
                    elif node.func.attr == "handle" \
                            and "__init__" not in stack:
                        offenders.append((rel.replace(os.sep, "/"),
                                          node.lineno, "late-intern"))
                for child in ast.iter_child_nodes(node):
                    walk(child)

            walk(tree)
    return sorted(offenders)


def test_checker_matches_legacy_walk():
    """The registered checker reports the identical violation set the
    pre-framework AST walk did (modulo the repo-relative path prefix
    and the checker's extra coverage guard)."""
    report = run_lint(root=REPO_ROOT, select=["stats-slots"])
    from_checker = sorted(
        (finding.path[len("src/repro/"):], finding.line, finding.code)
        for finding in report.findings + report.suppressed
        if finding.code in ("string-bump", "late-intern"))
    assert from_checker == _legacy_walk()


def test_scan_covers_the_hot_modules():
    """The checker's own coverage guard fires when the walk no longer
    reaches the per-cycle files this lint exists for (guards against a
    src layout move silently emptying the scan)."""
    from repro.lintkit.base import LintContext
    from repro.lintkit.checkers.stats_slots import HOT_MODULES, \
        StatsSlotsChecker
    ctx = LintContext(REPO_ROOT)
    assert set(HOT_MODULES) <= set(ctx.python_files("src/repro"))
    # On an empty tree the guard must fire for every hot module.
    import tempfile
    with tempfile.TemporaryDirectory() as empty:
        os.makedirs(os.path.join(empty, "src", "repro"))
        findings = StatsSlotsChecker().run(LintContext(empty))
        assert {f.path for f in findings
                if f.code == "missing-hot-module"} == set(HOT_MODULES)
