"""Top-level simulator and runner."""

import pytest

from repro.config import default_config
from repro.defenses import FIGURE_ORDER, registry
from repro.pipeline.isa import Op
from repro.pipeline.program import ProgramBuilder
from repro.sim.runner import (
    compare_defenses,
    normalised_times,
    run_program,
    run_workload,
)
from repro.sim.simulator import Simulator
from repro.workloads.spec import get_workload


def tiny_program(value=5, name="tiny"):
    b = ProgramBuilder(name)
    b.li(1, value)
    b.li(2, 0)
    b.label("loop")
    b.alu(Op.ADD, 2, 2, 1)
    b.alu(Op.SUB, 1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    return b.build()


def test_single_core_run():
    sim = Simulator(tiny_program(), registry["Unsafe"]())
    result = sim.run()
    assert result.finished
    assert result.insts > 0
    assert 0 < result.ipc <= 8
    assert result.arch_regs()[2] == 15


def test_multicore_runs_to_completion():
    programs = [tiny_program(3 + i, "t%d" % i) for i in range(4)]
    sim = Simulator(programs, registry["GhostMinion"]())
    result = sim.run()
    assert result.finished
    assert len(result.cores) == 4
    for i, core in enumerate(result.cores):
        assert core.halted
        assert core.regs[2] == sum(range(1, 4 + i))


def test_core_count_mismatch_rejected():
    cfg = default_config(cores=2)
    with pytest.raises(ValueError):
        Simulator(tiny_program(), registry["Unsafe"](), cfg=cfg)


def test_shared_memory_between_cores():
    """A store by core 0 is observed by core 1 (after invalidation)."""
    b0 = ProgramBuilder("writer")
    b0.li(1, 0x1000)
    b0.li(2, 99)
    b0.store(1, 2)
    b0.li(3, 200)
    b0.label("spin")
    b0.alu(Op.SUB, 3, 3, imm=1)
    b0.bnez(3, "spin")
    b0.halt()
    b1 = ProgramBuilder("reader")
    b1.li(3, 300)
    b1.label("spin")
    b1.alu(Op.SUB, 3, 3, imm=1)
    b1.bnez(3, "spin")
    b1.load(4, None, imm=0x1000)
    b1.halt()
    sim = Simulator([b0.build(), b1.build()], registry["GhostMinion"]())
    result = sim.run()
    assert result.finished
    assert result.cores[1].regs[4] == 99


def test_run_workload_by_name():
    result = run_workload("hmmer", "Unsafe", scale=0.05)
    assert result.finished and result.insts > 100


def test_run_workload_unknown_defense():
    with pytest.raises(KeyError):
        run_workload("hmmer", "NotADefense", scale=0.05)


def test_compare_and_normalise():
    results = compare_defenses(["hmmer"], ["Unsafe", "GhostMinion"],
                               scale=0.05)
    table = normalised_times(results)
    assert "GhostMinion" in table["hmmer"]
    assert table["hmmer"]["GhostMinion"] > 0.5


def test_normalise_requires_baseline():
    results = compare_defenses(["hmmer"], ["GhostMinion"], scale=0.05)
    with pytest.raises(KeyError):
        normalised_times(results)


def test_simulator_does_not_mutate_programs():
    """Programs are built once per workload and shared across defenses
    (and across the engine's worker payloads), so simulation must never
    mutate Program state."""
    import copy
    spec = get_workload("hmmer")
    programs = spec.build(0.05)
    snapshot = copy.deepcopy(programs)
    first = run_program(list(programs), "GhostMinion")
    second = run_program(list(programs), "Unsafe")
    third = run_program(list(programs), "GhostMinion")
    assert programs[0].instrs == snapshot[0].instrs
    assert programs[0].memory == snapshot[0].memory
    # reuse gives the same timing as a fresh build
    fresh = run_program(spec.build(0.05), "GhostMinion")
    assert first.cycles == third.cycles == fresh.cycles
    assert second.finished and first.finished


def test_compare_defenses_reuses_programs(monkeypatch):
    """compare_defenses builds each workload's programs once, not once
    per (workload, defense) pair."""
    from repro.workloads.spec import WorkloadSpec
    builds = []
    original = WorkloadSpec.build

    def counting_build(self, scale=1.0):
        builds.append((self.name, scale))
        return original(self, scale)

    monkeypatch.setattr(WorkloadSpec, "build", counting_build)
    compare_defenses(["hmmer"], ["Unsafe", "GhostMinion", "MuonTrap"],
                     scale=0.05)
    assert builds == [("hmmer", 0.05)]


def test_registry_covers_all_figure_bars():
    assert set(FIGURE_ORDER) <= set(registry)
    assert "Unsafe" in registry
    for name in FIGURE_ORDER:
        assert registry[name]().name == name
