"""Setup shim: this environment has no `wheel` package, so PEP 660
editable installs fail; `python setup.py develop` (or `pip install -e .`
on machines with wheel) both work.

Accelerated build: ``REPRO_BUILD_ACCEL=1 pip install -e '.[accel]'``
compiles the per-cycle hot core (src/repro/pipeline/hotcore.py) with
mypyc.  The resulting extension shadows the pure source on import;
``REPRO_ACCEL=0/1`` selects the build at runtime (see repro.accel and
docs/performance.md).  Without the toolchain the hook prints a note and
falls back to a pure-Python build — nothing in the repo requires the
extension.
"""

import os
import sys

from setuptools import setup

#: Modules compiled under REPRO_BUILD_ACCEL=1.  Only the hot core: it
#: was restructured for mypyc (module-level constants, __slots__-style
#: attribute sets, no dynamic class surgery); the orchestration layers
#: stay interpreted so defenses/tests can monkeypatch them.
ACCEL_MODULES = ["src/repro/pipeline/hotcore.py"]


def _accel_ext_modules():
    if os.environ.get("REPRO_BUILD_ACCEL") != "1":
        return []
    try:
        from mypyc.build import mypycify
    except ImportError:
        print("setup.py: REPRO_BUILD_ACCEL=1 but mypyc is not installed "
              "(pip install mypy); building pure-Python", file=sys.stderr)
        return []
    try:
        return mypycify(ACCEL_MODULES, opt_level="3")
    except Exception as exc:  # toolchain present but broken: don't fail
        print("setup.py: mypyc build skipped (%s); building pure-Python"
              % exc, file=sys.stderr)
        return []


setup(
    ext_modules=_accel_ext_modules(),
    extras_require={"accel": ["mypy>=1.8"]},
)
