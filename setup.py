"""Setup shim: this environment has no `wheel` package, so PEP 660
editable installs fail; `python setup.py develop` (or `pip install -e .`
on machines with wheel) both work."""

from setuptools import setup

setup()
